// Unit and integration tests for the FastACK agent (§5.4-§5.5, Table 3).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/fastack/agent.hpp"
#include "scenario/testbed.hpp"

namespace w11 {
namespace {

using fastack::FastAckAgent;
using fastack::FlowState;

// A minimal AP rig: one AP, one (idle) client, agent installed, with the
// upstream wire captured. Segments are driven by hand so every Table-3
// transition is directly observable.
class FastAckRig : public ::testing::Test {
 protected:
  void SetUp() override { init({}); }

  void init(FastAckAgent::Config cfg) {
    // Tear down in dependency order before rebuilding (re-init support).
    agent_.reset();
    client_.reset();
    ap_.reset();
    medium_.reset();
    wire_.clear();
    medium_ = std::make_unique<mac::Medium>(sim_, mac::MediumConfig{}, Rng(1));
    AccessPoint::Config acfg;
    acfg.id = ApId{0};
    ap_ = std::make_unique<AccessPoint>(sim_, *medium_, acfg, Rng(2));
    ClientStation::Config ccfg;
    ccfg.id = StationId{7};
    ccfg.pos = Position{5, 0};
    client_ = std::make_unique<ClientStation>(sim_, *medium_, ccfg, Rng(3));
    ap_->associate(client_.get());
    agent_ = std::make_unique<FastAckAgent>(sim_, *ap_, cfg);
    ap_->set_interceptor(agent_.get());
    ap_->set_wire_out([this](TcpSegment seg) { wire_.push_back(std::move(seg)); });
  }

  static TcpSegment data(std::uint64_t seq, std::uint32_t len = 1460) {
    TcpSegment seg;
    seg.flow = FlowId{1};
    seg.dst_station = StationId{7};
    seg.seq = seq;
    seg.payload = len;
    return seg;
  }

  static TcpSegment client_ack(std::uint64_t ackno, std::uint64_t rwnd = 1'048'576) {
    TcpSegment a;
    a.flow = FlowId{1};
    a.is_ack = true;
    a.ack = ackno;
    a.rwnd = rwnd;
    return a;
  }

  // Shorthand for driving the interceptor directly (what the AP's BlockAck
  // path does).
  void air_ack(std::uint64_t seq, std::uint32_t len = 1460) {
    agent_->on_80211_delivered(data(seq, len));
  }

  const FlowState& state() {
    const FlowState* s = agent_->flow_state(FlowId{1});
    EXPECT_NE(s, nullptr);
    return *s;
  }

  Simulator sim_;
  std::unique_ptr<mac::Medium> medium_;
  std::unique_ptr<AccessPoint> ap_;
  std::unique_ptr<ClientStation> client_;
  std::unique_ptr<FastAckAgent> agent_;
  std::vector<TcpSegment> wire_;
};

// ------------------------------------------------------- data-path cases --

TEST_F(FastAckRig, InitializesStateOnFirstSegment) {
  TcpSegment seg = data(1000);
  EXPECT_EQ(agent_->on_downlink_data(seg), TcpInterceptor::DataAction::kForward);
  const FlowState& s = state();
  EXPECT_EQ(s.seq_exp, 2460u);
  EXPECT_EQ(s.seq_fack, 1000u);
  EXPECT_EQ(s.seq_tcp, 1000u);
  EXPECT_EQ(s.seq_high, 2460u);
  EXPECT_EQ(s.retx_cache.size(), 1u);
  EXPECT_EQ(agent_->tracked_flows(), 1u);
}

TEST_F(FastAckRig, CaseIIISequentialDataAdvancesSeqExp) {
  for (int i = 0; i < 5; ++i) {
    TcpSegment seg = data(1460u * static_cast<std::uint64_t>(i));
    EXPECT_EQ(agent_->on_downlink_data(seg), TcpInterceptor::DataAction::kForward);
  }
  EXPECT_EQ(state().seq_exp, 7300u);
  EXPECT_EQ(state().retx_cache.size(), 5u);
  EXPECT_TRUE(state().holes_vec.empty());
}

TEST_F(FastAckRig, CaseISpuriousRetransmissionDropped) {
  TcpSegment seg = data(0);
  agent_->on_downlink_data(seg);
  air_ack(0);  // fast-acks through 1460
  EXPECT_EQ(state().seq_fack, 1460u);
  TcpSegment dup = data(0);
  EXPECT_EQ(agent_->on_downlink_data(dup), TcpInterceptor::DataAction::kDrop);
  EXPECT_EQ(agent_->stats().spurious_retx_dropped, 1u);
}

TEST_F(FastAckRig, CaseIIEndToEndRetransmissionPrioritized) {
  TcpSegment a = data(0), b = data(1460);
  agent_->on_downlink_data(a);
  agent_->on_downlink_data(b);
  // Sender retransmits the un-fast-acked first segment.
  TcpSegment retx = data(0);
  EXPECT_EQ(agent_->on_downlink_data(retx),
            TcpInterceptor::DataAction::kForwardPriority);
  EXPECT_EQ(agent_->stats().e2e_retx_prioritized, 1u);
}

TEST_F(FastAckRig, CaseIVHoleDetectedAndDupAcksEmitted) {
  TcpSegment a = data(0);
  agent_->on_downlink_data(a);
  air_ack(0);
  wire_.clear();
  // Upstream dropped [1460, 2920): next arrival jumps ahead.
  TcpSegment c = data(2920);
  EXPECT_EQ(agent_->on_downlink_data(c), TcpInterceptor::DataAction::kForward);
  ASSERT_EQ(state().holes_vec.size(), 1u);
  EXPECT_EQ(state().holes_vec[0].start, 1460u);
  EXPECT_EQ(state().holes_vec[0].end, 2920u);
  EXPECT_EQ(state().seq_exp, 4380u);
  // Three emulated dup ACKs at the fast-ACK point carrying SACK info.
  ASSERT_EQ(wire_.size(), 3u);
  for (const auto& dup : wire_) {
    EXPECT_TRUE(dup.is_ack);
    EXPECT_EQ(dup.ack, 1460u);
    ASSERT_EQ(dup.sacks.size(), 1u);
    EXPECT_EQ(dup.sacks[0].start, 2920u);
  }
  EXPECT_EQ(agent_->stats().holes_detected, 1u);
  EXPECT_EQ(agent_->stats().hole_dupacks_sent, 3u);
}

TEST_F(FastAckRig, HoleClearedByEndToEndRetransmission) {
  TcpSegment a = data(0);
  agent_->on_downlink_data(a);
  TcpSegment c = data(2920);
  agent_->on_downlink_data(c);
  ASSERT_EQ(state().holes_vec.size(), 1u);
  TcpSegment fill = data(1460);
  EXPECT_EQ(agent_->on_downlink_data(fill),
            TcpInterceptor::DataAction::kForwardPriority);
  EXPECT_TRUE(state().holes_vec.empty());
}

// --------------------------------------------------------- 802.11 ACKs --

TEST_F(FastAckRig, ContiguousAirAcksEmitCumulativeFastAcks) {
  for (int i = 0; i < 3; ++i) {
    TcpSegment seg = data(1460u * static_cast<std::uint64_t>(i));
    agent_->on_downlink_data(seg);
  }
  wire_.clear();
  air_ack(0);
  ASSERT_EQ(wire_.size(), 1u);
  EXPECT_EQ(wire_[0].ack, 1460u);
  air_ack(1460);
  air_ack(2920);
  EXPECT_EQ(state().seq_fack, 4380u);
  EXPECT_EQ(wire_.back().ack, 4380u);
  EXPECT_EQ(agent_->stats().fast_acks_sent, 3u);
}

TEST_F(FastAckRig, NonContiguousAirAcksWaitForGap) {
  for (int i = 0; i < 3; ++i) {
    TcpSegment seg = data(1460u * static_cast<std::uint64_t>(i));
    agent_->on_downlink_data(seg);
  }
  wire_.clear();
  // MPDU #1 lost on air: BlockAck covers #0 and #2 only.
  air_ack(0);
  air_ack(2920);
  EXPECT_EQ(state().seq_fack, 1460u);  // stalls at the gap
  EXPECT_EQ(state().q_seq.size(), 1u);
  ASSERT_EQ(wire_.size(), 1u);
  EXPECT_EQ(wire_[0].ack, 1460u);
  // Retry succeeds: the gap closes and the fast ACK jumps to the end.
  air_ack(1460);
  EXPECT_EQ(state().seq_fack, 4380u);
  EXPECT_EQ(wire_.back().ack, 4380u);
  EXPECT_TRUE(state().q_seq.empty());
}

TEST_F(FastAckRig, NaiveModeAcksPastGaps) {
  FastAckAgent::Config cfg;
  cfg.require_contiguity = false;  // ablation D4
  init(cfg);
  TcpSegment a = data(0), b = data(1460), c = data(2920);
  agent_->on_downlink_data(a);
  agent_->on_downlink_data(b);
  agent_->on_downlink_data(c);
  wire_.clear();
  air_ack(2920);  // out of order
  EXPECT_EQ(state().seq_fack, 4380u);  // naively jumped the gap
  ASSERT_EQ(wire_.size(), 1u);
  EXPECT_EQ(wire_[0].ack, 4380u);
}

TEST_F(FastAckRig, UnknownFlowAirAckIgnored) {
  TcpSegment other = data(0);
  other.flow = FlowId{99};
  agent_->on_80211_delivered(other);  // never seen on the data path
  EXPECT_EQ(agent_->stats().fast_acks_sent, 0u);
  EXPECT_EQ(agent_->tracked_flows(), 0u);
}

// -------------------------------------------------------- rwnd rewrite --

TEST_F(FastAckRig, FastAckRewritesReceiveWindow) {
  TcpSegment a = data(0);
  agent_->on_downlink_data(a);
  // Client told us rwnd = 100 kB on an earlier ACK.
  (void)agent_->on_uplink_ack(client_ack(0, 100'000));
  // Push seq_high ahead: 10 more segments the client hasn't acked.
  for (int i = 1; i <= 10; ++i) {
    TcpSegment seg = data(1460u * static_cast<std::uint64_t>(i));
    agent_->on_downlink_data(seg);
  }
  wire_.clear();
  air_ack(0);
  ASSERT_EQ(wire_.size(), 1u);
  // rx'win = rxwin - outbytes = 100000 - (11*1460 - 0).
  EXPECT_EQ(wire_[0].rwnd, 100'000u - 11u * 1460u);
}

TEST_F(FastAckRig, RwndRewriteDisabledPassesClientWindow) {
  FastAckAgent::Config cfg;
  cfg.rewrite_rwnd = false;  // ablation D5
  init(cfg);
  TcpSegment a = data(0);
  agent_->on_downlink_data(a);
  (void)agent_->on_uplink_ack(client_ack(0, 100'000));
  wire_.clear();
  air_ack(0);
  ASSERT_EQ(wire_.size(), 1u);
  EXPECT_EQ(wire_[0].rwnd, 100'000u);
}

TEST_F(FastAckRig, RwndNeverUnderflows) {
  TcpSegment a = data(0);
  agent_->on_downlink_data(a);
  (void)agent_->on_uplink_ack(client_ack(0, 1000));  // tiny client window
  for (int i = 1; i <= 10; ++i) {
    TcpSegment seg = data(1460u * static_cast<std::uint64_t>(i));
    agent_->on_downlink_data(seg);
  }
  wire_.clear();
  air_ack(0);
  ASSERT_EQ(wire_.size(), 1u);
  EXPECT_EQ(wire_[0].rwnd, 0u);  // clamped, not wrapped
}

// ---------------------------------------------------- client TCP ACKs --

TEST_F(FastAckRig, ClientAcksSuppressedAndStateUpdated) {
  TcpSegment a = data(0);
  agent_->on_downlink_data(a);
  air_ack(0);
  EXPECT_TRUE(agent_->on_uplink_ack(client_ack(1460)));
  EXPECT_EQ(state().seq_tcp, 1460u);
  EXPECT_EQ(agent_->stats().client_acks_suppressed, 1u);
  // Cache evicted once the client's own TCP confirmed receipt.
  EXPECT_TRUE(state().retx_cache.empty());
}

TEST_F(FastAckRig, SuppressionDisabledForwardsClientAcks) {
  FastAckAgent::Config cfg;
  cfg.suppress_client_acks = false;  // ablation D6
  init(cfg);
  TcpSegment a = data(0);
  agent_->on_downlink_data(a);
  EXPECT_FALSE(agent_->on_uplink_ack(client_ack(1460)));
}

TEST_F(FastAckRig, UnknownFlowAcksNeverSuppressed) {
  TcpSegment ack = client_ack(500);
  ack.flow = FlowId{55};
  EXPECT_FALSE(agent_->on_uplink_ack(ack));
}

TEST_F(FastAckRig, DuplicateClientAcksTriggerLocalRetransmit) {
  for (int i = 0; i < 4; ++i) {
    TcpSegment seg = data(1460u * static_cast<std::uint64_t>(i));
    agent_->on_downlink_data(seg);
    air_ack(1460u * static_cast<std::uint64_t>(i));
  }
  // Client acked through 1460 then went silent on 1460 (missing data after
  // a bad hint): duplicate ACKs arrive.
  (void)agent_->on_uplink_ack(client_ack(1460));
  const std::size_t depth_before = ap_->queue_depth(StationId{7});
  (void)agent_->on_uplink_ack(client_ack(1460));  // first dupack triggers
  // The cached gap [1460, seq_fack) = 3 segments was re-injected.
  EXPECT_EQ(agent_->stats().local_retransmits, 3u);
  EXPECT_EQ(ap_->queue_depth(StationId{7}), depth_before + 3);
  // Further dupacks within the holdoff window are rate-limited: no storm.
  (void)agent_->on_uplink_ack(client_ack(1460));
  (void)agent_->on_uplink_ack(client_ack(1460));
  EXPECT_EQ(agent_->stats().local_retransmits, 3u);
  EXPECT_EQ(ap_->queue_depth(StationId{7}), depth_before + 3);
}

TEST_F(FastAckRig, LocalRetransmitServedFromCacheNotSender) {
  TcpSegment a = data(0);
  agent_->on_downlink_data(a);
  air_ack(0);
  wire_.clear();
  (void)agent_->on_uplink_ack(client_ack(0));
  (void)agent_->on_uplink_ack(client_ack(0));
  (void)agent_->on_uplink_ack(client_ack(0));
  // Nothing extra was sent upstream: recovery is local.
  for (const auto& seg : wire_) EXPECT_TRUE(seg.is_ack);
  EXPECT_EQ(agent_->stats().local_retransmits, 1u);
}

TEST_F(FastAckRig, WindowUpdateEmittedWhenWindowReopens) {
  TcpSegment a = data(0);
  agent_->on_downlink_data(a);
  // Client advertises a window smaller than outstanding -> rx'win pins at 0.
  (void)agent_->on_uplink_ack(client_ack(0, 1000));
  for (int i = 1; i <= 5; ++i) {
    TcpSegment seg = data(1460u * static_cast<std::uint64_t>(i));
    agent_->on_downlink_data(seg);
  }
  wire_.clear();
  air_ack(0);  // fast ack advertises 0
  ASSERT_FALSE(wire_.empty());
  EXPECT_EQ(wire_.back().rwnd, 0u);
  wire_.clear();
  // Client now acks everything with a big window: a pure window update must
  // go upstream even though the client's ACK itself is suppressed.
  EXPECT_TRUE(agent_->on_uplink_ack(client_ack(6u * 1460u, 1'000'000)));
  ASSERT_EQ(wire_.size(), 1u);
  EXPECT_GT(wire_[0].rwnd, 0u);
  EXPECT_EQ(agent_->stats().window_updates_sent, 1u);
}

// ----------------------------------------------- flat retx-cache paths --
// The retransmission cache is a sorted flat ring (SeqRing); these pin the
// eviction, overflow and dup-ACK/SACK service semantics the node-based map
// used to provide.

TEST_F(FastAckRig, PartialAckEvictsOnlyCoveredPrefix) {
  for (int i = 0; i < 6; ++i) {
    TcpSegment seg = data(1460u * static_cast<std::uint64_t>(i));
    agent_->on_downlink_data(seg);
    air_ack(1460u * static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(state().retx_cache.size(), 6u);
  // Client acks through 3 segments: exactly that prefix is evicted; the
  // un-acked tail must stay cached (it may still need local service).
  (void)agent_->on_uplink_ack(client_ack(3u * 1460u));
  EXPECT_EQ(agent_->stats().cache_evictions, 3u);
  ASSERT_EQ(state().retx_cache.size(), 3u);
  EXPECT_EQ(state().retx_cache.begin()->first, 3u * 1460u);
  EXPECT_GE(state().retx_cache.begin()->second.seq_end(), state().seq_tcp);
  // Acking the rest drains the cache entirely.
  (void)agent_->on_uplink_ack(client_ack(6u * 1460u));
  EXPECT_TRUE(state().retx_cache.empty());
  EXPECT_EQ(agent_->stats().cache_evictions, 6u);
}

TEST_F(FastAckRig, CacheOverflowCountsAndSkipsCaching) {
  FastAckAgent::Config cfg;
  cfg.retx_cache_segments = 4;
  init(cfg);
  for (int i = 0; i < 6; ++i) {
    TcpSegment seg = data(1460u * static_cast<std::uint64_t>(i));
    agent_->on_downlink_data(seg);
  }
  // Only the first 4 made it into the cache; the remainder counted overflow.
  EXPECT_EQ(state().retx_cache.size(), 4u);
  EXPECT_EQ(agent_->stats().cache_overflow, 2u);
  // An e2e retransmission of an uncached segment at capacity must not grow
  // or refresh the cache (at-capacity refresh is skipped by design).
  TcpSegment retx = data(4u * 1460u);
  EXPECT_EQ(agent_->on_downlink_data(retx),
            TcpInterceptor::DataAction::kForwardPriority);
  EXPECT_EQ(state().retx_cache.size(), 4u);
}

TEST_F(FastAckRig, DupAckServiceFindsCoveringSegmentMidCache) {
  // Fill the cache, fast-ack everything, then have the client stall at a
  // byte in the *middle* of a cached segment: the covering-segment lookup
  // (upper_bound + one-back) must find it and replay from there.
  for (int i = 0; i < 5; ++i) {
    TcpSegment seg = data(1460u * static_cast<std::uint64_t>(i));
    agent_->on_downlink_data(seg);
    air_ack(1460u * static_cast<std::uint64_t>(i));
  }
  const std::uint64_t mid = 2u * 1460u + 700u;  // inside segment #2
  (void)agent_->on_uplink_ack(client_ack(mid));
  const std::size_t depth_before = ap_->queue_depth(StationId{7});
  (void)agent_->on_uplink_ack(client_ack(mid));  // dupack
  // Segments #2, #3, #4 are at-or-after the stall point and below seq_fack.
  EXPECT_EQ(agent_->stats().local_retransmits, 3u);
  EXPECT_EQ(ap_->queue_depth(StationId{7}), depth_before + 3);
}

TEST_F(FastAckRig, DupAckBelowEvictedPrefixIsCacheMiss) {
  for (int i = 0; i < 4; ++i) {
    TcpSegment seg = data(1460u * static_cast<std::uint64_t>(i));
    agent_->on_downlink_data(seg);
    air_ack(1460u * static_cast<std::uint64_t>(i));
  }
  (void)agent_->on_uplink_ack(client_ack(4u * 1460u));  // evicts everything
  EXPECT_TRUE(state().retx_cache.empty());
  // A dup-ACK at the (fully evicted) ack point must be a clean cache miss —
  // no crash, no bogus injection; the sender's own machinery recovers.
  (void)agent_->on_uplink_ack(client_ack(4u * 1460u));  // dupack, cache empty
  EXPECT_EQ(agent_->stats().local_retransmits, 0u);
}

TEST_F(FastAckRig, HoleDupAcksCarrySackOfArrivedRange) {
  // SACK generation rides the flat path end to end: the emulated dup ACKs
  // for an upstream hole must carry the arrived (out-of-order) range.
  TcpSegment a = data(0);
  agent_->on_downlink_data(a);
  wire_.clear();
  TcpSegment jump = data(4380, 2920);  // skipped [1460, 4380)
  agent_->on_downlink_data(jump);
  ASSERT_EQ(wire_.size(), 3u);
  for (const auto& dup : wire_) {
    ASSERT_EQ(dup.sacks.size(), 1u);
    EXPECT_EQ(dup.sacks[0].start, 4380u);
    EXPECT_EQ(dup.sacks[0].end, 7300u);
    EXPECT_EQ(dup.wire_size(), Bytes{52});  // SACK option space counted
  }
}

TEST_F(FastAckRig, EndToEndRetransmitRefreshesCachedCopy) {
  TcpSegment a = data(0), b = data(1460);
  agent_->on_downlink_data(a);
  agent_->on_downlink_data(b);
  // The sender's retransmission of segment 0 carries a different DSCP; the
  // cached copy must be replaced in place (same key, updated value).
  TcpSegment retx = data(0);
  retx.dscp = 46;
  agent_->on_downlink_data(retx);
  EXPECT_EQ(state().retx_cache.size(), 2u);
  EXPECT_EQ(state().retx_cache.begin()->second.dscp, 46);
}

// ------------------------------------------------- bounded-table GC (PR 1) --

TEST_F(FastAckRig, CapacityEvictionKeepsTableBounded) {
  FastAckAgent::Config cfg;
  cfg.max_flows = 3;
  cfg.flow_idle_timeout = time::seconds(3600);  // idle GC out of the picture
  init(cfg);
  for (std::uint32_t f = 1; f <= 5; ++f) {
    TcpSegment seg = data(0);
    seg.flow = FlowId{f};
    agent_->on_downlink_data(seg);
    EXPECT_LE(agent_->tracked_flows(), 3u);
  }
  EXPECT_EQ(agent_->tracked_flows(), 3u);
  EXPECT_EQ(agent_->stats().flows_evicted_capacity, 2u);
  EXPECT_EQ(agent_->stats().flows_evicted_idle, 0u);
}

TEST_F(FastAckRig, IdleFlowsCollectedBeforeCapacityEviction) {
  FastAckAgent::Config cfg;
  cfg.max_flows = 2;
  cfg.flow_idle_timeout = time::millis(10);
  init(cfg);
  TcpSegment s1 = data(0);
  s1.flow = FlowId{1};
  agent_->on_downlink_data(s1);
  TcpSegment s2 = data(0);
  s2.flow = FlowId{2};
  agent_->on_downlink_data(s2);
  // Both flows go idle past the timeout; a new flow's arrival must GC them
  // instead of evicting an active flow by recency.
  sim_.schedule_at(time::millis(50), [] {});
  sim_.run();
  TcpSegment s3 = data(0);
  s3.flow = FlowId{3};
  agent_->on_downlink_data(s3);
  EXPECT_EQ(agent_->stats().flows_evicted_idle, 2u);
  EXPECT_EQ(agent_->stats().flows_evicted_capacity, 0u);
  EXPECT_EQ(agent_->tracked_flows(), 1u);
  EXPECT_NE(agent_->flow_state(FlowId{3}), nullptr);
}

// ----------------------------------------------------------- invariants --

TEST_F(FastAckRig, InvariantSeqFackNeverExceedsSeqExp) {
  Rng rng(99);
  std::uint64_t next = 0;
  std::vector<std::uint64_t> sent;
  for (int step = 0; step < 2000; ++step) {
    const double r = rng.uniform();
    if (r < 0.45) {
      // New data, sometimes skipping ahead (upstream hole).
      if (rng.bernoulli(0.05)) next += 1460;
      TcpSegment seg = data(next);
      agent_->on_downlink_data(seg);
      sent.push_back(next);
      next += 1460;
    } else if (r < 0.8 && !sent.empty()) {
      air_ack(sent[rng.index(sent.size())]);
    } else if (!sent.empty()) {
      (void)agent_->on_uplink_ack(
          client_ack(sent[rng.index(sent.size())] + 1460));
    }
    if (agent_->flow_state(FlowId{1}) != nullptr) {
      const FlowState& s = state();
      EXPECT_LE(s.seq_fack, s.seq_exp);
      EXPECT_LE(s.seq_exp, s.seq_high);
      EXPECT_LE(s.seq_tcp, s.seq_fack);
    }
  }
}

// --------------------------------------------------------- integration --

TEST(FastAckIntegration, ThroughputBeatsBaselineUnderContention) {
  auto run = [](bool fa) {
    scenario::TestbedConfig cfg;
    cfg.n_clients_per_ap = 15;
    cfg.duration = time::seconds(4);
    cfg.fastack = {fa};
    scenario::Testbed tb(cfg);
    tb.run();
    return tb.aggregate_throughput_mbps();
  };
  EXPECT_GT(run(true), run(false) * 1.1);
}

TEST(FastAckIntegration, AggregationImproves) {
  auto mean_ampdu = [](bool fa) {
    scenario::TestbedConfig cfg;
    cfg.n_clients_per_ap = 12;
    cfg.duration = time::seconds(4);
    cfg.fastack = {fa};
    scenario::Testbed tb(cfg);
    tb.run();
    double sum = 0.0;
    const auto v = tb.mean_ampdu_per_client(0);
    for (double a : v) sum += a;
    return sum / static_cast<double>(v.size());
  };
  EXPECT_GT(mean_ampdu(true), mean_ampdu(false) * 1.3);
}

TEST(FastAckIntegration, SurvivesBadHints) {
  // 3 % bad hints (double the paper's ~1.5 %): data must still flow,
  // local retransmissions must fire, and every flow must keep advancing
  // (no wedged connections).
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 4;
  cfg.duration = time::seconds(4);
  cfg.fastack = {true};
  cfg.bad_hint_rate = 0.03;
  scenario::Testbed tb(cfg);
  tb.run();
  EXPECT_GT(tb.aggregate_throughput_mbps(), 20.0);
  ASSERT_NE(tb.agent(0), nullptr);
  EXPECT_GT(tb.agent(0)->stats().local_retransmits, 0u);
  for (int c = 0; c < 4; ++c) {
    const auto* rx = tb.client(0, c).receiver(FlowId{static_cast<std::uint32_t>(c)});
    ASSERT_NE(rx, nullptr);
    EXPECT_GT(rx->bytes_delivered(), 1'000'000u) << "flow " << c << " wedged";
  }
}

TEST(FastAckIntegration, SurvivesUpstreamDrops) {
  // A shallow wired queue forces upstream holes (§5.5.3).
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 6;
  cfg.duration = time::seconds(4);
  cfg.fastack = {true};
  cfg.wire.queue_packets = 64;
  scenario::Testbed tb(cfg);
  tb.run();
  EXPECT_GT(tb.aggregate_throughput_mbps(), 20.0);
  ASSERT_NE(tb.agent(0), nullptr);
  EXPECT_GT(tb.agent(0)->stats().holes_detected, 0u);
}

TEST(FastAckIntegration, CwndOpensToCap) {
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 10;
  cfg.duration = time::seconds(4);
  cfg.fastack = {true};
  scenario::Testbed tb(cfg);
  tb.run();
  // With fast ACKs the windows open wide (Fig. 14's headline).
  double max_cwnd = 0.0;
  for (int c = 0; c < 10; ++c)
    max_cwnd = std::max(max_cwnd, tb.sender(0, c).cwnd_segments());
  EXPECT_GT(max_cwnd, 400.0);
}

TEST(FastAckIntegration, RuntimeToggleMatchesConstruction) {
  // FastACK "can be toggled at run-time" (§5.6.3): enabling the agent on a
  // running AP must not disturb existing flows' correctness.
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 3;
  cfg.duration = time::seconds(2);
  scenario::Testbed tb(cfg);
  tb.run();
  const double base = tb.aggregate_throughput_mbps();
  EXPECT_GT(base, 0.0);
}

}  // namespace
}  // namespace w11
