// Fault-injection subsystem tests: deterministic plans, the injector's two
// drive modes, degraded-scan decoration, the services' graceful-degradation
// guards, DFS radar chains, FastACK safe-disable/bounded-table behavior, and
// the seed x plan chaos soak that ties it all together.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/fastack/agent.hpp"
#include "core/turboca/service.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "fault/scan_fault.hpp"
#include "flowsim/network.hpp"
#include "scenario/testbed.hpp"
#include "telemetry/collector.hpp"
#include "workload/topology.hpp"

namespace w11 {
namespace {

using fault::DegradedScanHooks;
using fault::FaultEvent;
using fault::FaultHandlers;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using fault::ScanFaultMode;

// ---------------------------------------------------------------- plans --

TEST(FaultPlan, BuildersExpandAndSortByTime) {
  FaultPlan plan("unit");
  plan.radar_burst(time::millis(10), /*ap=*/3, /*count=*/3, time::millis(5))
      .link_outage(time::millis(1), /*link=*/0, time::millis(30))
      .ap_crash(time::millis(12), 1);
  const auto& evs = plan.events();
  ASSERT_EQ(evs.size(), 6u);  // 3 radar + down/up pair + crash
  for (std::size_t i = 1; i < evs.size(); ++i)
    EXPECT_LE(evs[i - 1].at, evs[i].at) << "events not time-sorted at " << i;
  EXPECT_EQ(evs.front().kind, FaultKind::kLinkDown);
  EXPECT_EQ(evs.front().at, time::millis(1));
  EXPECT_EQ(evs.back().kind, FaultKind::kLinkUp);
  EXPECT_EQ(evs.back().at, time::millis(31));
  int radar_hits = 0;
  for (const auto& ev : evs)
    if (ev.kind == FaultKind::kRadar) {
      ++radar_hits;
      EXPECT_EQ(ev.target, 3);
    }
  EXPECT_EQ(radar_hits, 3);
}

TEST(FaultPlan, FlapIsRepeatedOutages) {
  FaultPlan plan;
  plan.link_flap(time::millis(100), /*link=*/1, /*flaps=*/2, time::millis(10));
  const auto& evs = plan.events();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs[0].kind, FaultKind::kLinkDown);
  EXPECT_EQ(evs[0].at, time::millis(100));
  EXPECT_EQ(evs[1].kind, FaultKind::kLinkUp);
  EXPECT_EQ(evs[1].at, time::millis(110));
  EXPECT_EQ(evs[2].kind, FaultKind::kLinkDown);
  EXPECT_EQ(evs[2].at, time::millis(120));
  EXPECT_EQ(evs[3].kind, FaultKind::kLinkUp);
  EXPECT_EQ(evs[3].at, time::millis(130));
}

TEST(FaultPlan, RandomPlansAreSeedDeterministic) {
  FaultPlan::RandomConfig cfg;
  cfg.horizon = time::seconds(5);
  cfg.n_aps = 4;
  cfg.n_links = 2;
  cfg.n_events = 10;
  const FaultPlan a = FaultPlan::random(42, cfg);
  const FaultPlan b = FaultPlan::random(42, cfg);
  EXPECT_EQ(a.events(), b.events());
  EXPECT_FALSE(a.empty());
  const FaultPlan c = FaultPlan::random(43, cfg);
  EXPECT_NE(a.events(), c.events());
  // Sorted regardless of the draw order.
  const auto& evs = a.events();
  for (std::size_t i = 1; i < evs.size(); ++i)
    EXPECT_LE(evs[i - 1].at, evs[i].at);
}

TEST(FaultPlan, EventToStringNamesEveryKind) {
  FaultPlan plan;
  plan.radar(time::millis(1), 0)
      .ap_crash(time::millis(2), 1)
      .scan_degrade(time::millis(3), ScanFaultMode::kPartial, 0.5)
      .link_outage(time::millis(4), 0, time::millis(5))
      .telemetry_drop(time::millis(10), 2)
      .clock_jump(time::millis(11), time::millis(7));
  for (const auto& ev : plan.events()) {
    EXPECT_NE(ev.to_string().find(fault::to_string(ev.kind)), std::string::npos)
        << ev.to_string();
  }
}

// -------------------------------------------------------------- injector --

TEST(FaultInjector, AdvanceFiresDueEventsOnceInOrder) {
  FaultPlan plan;
  plan.radar(time::millis(10), 0)
      .ap_crash(time::millis(20), 1)
      .radar(time::millis(30), 2);
  std::vector<int> radar_targets;
  int crashes = 0;
  FaultHandlers h;
  h.radar = [&](int ap) { radar_targets.push_back(ap); };
  h.ap_crash = [&](int) { ++crashes; };
  FaultInjector inj(plan, h);

  inj.advance_to(time::millis(15));
  EXPECT_EQ(inj.stats().fired, 1);
  // A rewound clock never re-fires (that is itself one of our faults).
  inj.advance_to(time::millis(5));
  EXPECT_EQ(inj.stats().fired, 1);
  inj.advance_to(time::millis(25));
  EXPECT_EQ(inj.stats().fired, 2);
  EXPECT_FALSE(inj.exhausted());
  inj.advance_to(time::seconds(1));
  EXPECT_TRUE(inj.exhausted());
  EXPECT_EQ(inj.stats().radar, 2);
  EXPECT_EQ(inj.stats().ap_crash, 1);
  EXPECT_EQ(inj.stats().unhandled, 0);
  EXPECT_EQ(crashes, 1);
  ASSERT_EQ(radar_targets.size(), 2u);
  EXPECT_EQ(radar_targets[0], 0);
  EXPECT_EQ(radar_targets[1], 2);
  // The log is the determinism witness: fired events in order.
  EXPECT_EQ(inj.log(), plan.events());
}

TEST(FaultInjector, MissingHandlerIsCountedNotFatal) {
  FaultPlan plan;
  plan.telemetry_drop(time::millis(1), 3);
  FaultInjector inj(plan, FaultHandlers{});
  inj.advance_to(time::millis(2));
  EXPECT_EQ(inj.stats().fired, 1);
  EXPECT_EQ(inj.stats().unhandled, 1);
  EXPECT_EQ(inj.stats().telemetry_drop, 1);
}

TEST(FaultInjector, ArmSchedulesOnSimulator) {
  FaultPlan plan;
  plan.radar(time::millis(5), 0).ap_crash(time::millis(7), 0);
  std::vector<std::pair<Time, FaultKind>> fired;
  Simulator sim;
  FaultHandlers h;
  h.radar = [&](int) { fired.emplace_back(sim.now(), FaultKind::kRadar); };
  h.ap_crash = [&](int) { fired.emplace_back(sim.now(), FaultKind::kApCrash); };
  FaultInjector inj(plan, h);
  inj.arm(sim);
  EXPECT_TRUE(inj.exhausted());  // handed off to the simulator
  sim.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], (std::pair{time::millis(5), FaultKind::kRadar}));
  EXPECT_EQ(fired[1], (std::pair{time::millis(7), FaultKind::kApCrash}));
  // An armed injector rejects manual driving, and re-arming is an error.
  EXPECT_THROW(inj.advance_to(time::seconds(1)), std::logic_error);
  EXPECT_THROW(inj.arm(sim), std::logic_error);
}

// -------------------------------------------------------- scan decorator --

turboca::NetworkHooks hooks_for(flowsim::Network& net) {
  turboca::NetworkHooks h;
  h.scan = [&net] { return net.scan(); };
  h.current_plan = [&net] { return net.current_plan(); };
  h.apply_plan = [&net](const ChannelPlan& p) { net.apply_plan(p); };
  return h;
}

std::unique_ptr<flowsim::Network> small_net(int n_aps) {
  auto net = std::make_unique<flowsim::Network>(flowsim::Network::Config{});
  const ClientCapability cap{WifiStandard::k80211ac, true, ChannelWidth::MHz80,
                             2, true, true};
  for (int i = 0; i < n_aps; ++i) {
    const ApId id = net->add_ap(Position{20.0 * i, 0.0}, ChannelWidth::MHz80,
                                Channel{Band::G5, 36, ChannelWidth::MHz20});
    net->add_client(id, Position{20.0 * i + 3.0, 0.0}, cap, 5.0);
  }
  return net;
}

TEST(DegradedScanHooks, ModesCorruptTheCensus) {
  auto net = small_net(3);
  Time clock = time::minutes(1);
  DegradedScanHooks deg(hooks_for(*net), [&clock] { return clock; }, Rng(5));
  auto h = deg.hooks();

  // Healthy: full census stamped with the harness clock, and cached.
  auto scans = h.scan();
  ASSERT_EQ(scans.size(), 3u);
  for (const auto& s : scans) EXPECT_EQ(s.taken_at, time::minutes(1));

  deg.set_mode(ScanFaultMode::kEmpty);
  EXPECT_TRUE(h.scan().empty());

  deg.set_mode(ScanFaultMode::kPartial, /*keep_fraction=*/0.0);
  EXPECT_TRUE(h.scan().empty());
  deg.set_mode(ScanFaultMode::kPartial, /*keep_fraction=*/1.0);
  EXPECT_EQ(h.scan().size(), 3u);

  // Stale: the last healthy snapshot replayed with its original timestamp.
  clock = time::minutes(45);
  deg.set_mode(ScanFaultMode::kStale);
  scans = h.scan();
  ASSERT_EQ(scans.size(), 3u);
  for (const auto& s : scans) EXPECT_EQ(s.taken_at, time::minutes(1));

  const auto& st = deg.stats();
  EXPECT_EQ(st.scans_served, 5);
  EXPECT_EQ(st.scans_emptied, 1);
  EXPECT_EQ(st.scans_partial, 2);
  EXPECT_EQ(st.scans_stale, 1);
  EXPECT_EQ(st.aps_dropped, 3);
}

TEST(DegradedScanHooks, StaleBeforeAnyHealthySnapshotIsEmpty) {
  auto net = small_net(2);
  Time clock{};
  DegradedScanHooks deg(hooks_for(*net), [&clock] { return clock; }, Rng(5));
  deg.set_mode(ScanFaultMode::kStale);
  EXPECT_TRUE(deg.hooks().scan().empty());
}

TEST(DegradedScanHooks, PartialCensusIsSeedDeterministic) {
  auto run = [] {
    auto net = small_net(6);
    Time clock{};
    DegradedScanHooks deg(hooks_for(*net), [&clock] { return clock; }, Rng(9));
    deg.set_mode(ScanFaultMode::kPartial, 0.5);
    std::vector<std::uint32_t> kept;
    for (const auto& s : deg.hooks().scan()) kept.push_back(s.id.value());
    return kept;
  };
  EXPECT_EQ(run(), run());
}

// ----------------------------------------------- service degradation --

TEST(TurboCaService, EmptyScansSkipFiringAndRetryNextTick) {
  auto net = small_net(6);
  Time clock{};
  DegradedScanHooks deg(hooks_for(*net), [&clock] { return clock; }, Rng(3));
  turboca::TurboCaService svc({}, {}, deg.hooks(), Rng(7));

  deg.set_mode(ScanFaultMode::kEmpty);
  clock = time::minutes(16);
  svc.advance_to(clock);
  EXPECT_EQ(svc.stats().runs, 0);
  EXPECT_EQ(svc.stats().empty_scan_skips, 1);

  // A skipped firing does not advance the tier anchor: the next poll tick
  // retries instead of waiting out a whole period.
  deg.set_mode(ScanFaultMode::kHealthy);
  clock = time::minutes(17);
  svc.advance_to(clock);
  EXPECT_EQ(svc.stats().runs, 1);
  EXPECT_EQ(svc.stats().empty_scan_skips, 1);
}

TEST(TurboCaService, StaleScansSkipFiring) {
  auto net = small_net(6);
  Time clock = time::minutes(1);
  DegradedScanHooks deg(hooks_for(*net), [&clock] { return clock; }, Rng(3));
  turboca::TurboCaService::Schedule sched;
  sched.max_scan_age = time::minutes(30);
  turboca::TurboCaService svc({}, sched, deg.hooks(), Rng(7));

  (void)deg.hooks().scan();  // prime the healthy cache at t=1min
  deg.set_mode(ScanFaultMode::kStale);
  clock = time::minutes(40);
  svc.advance_to(clock);  // cache is 39 min old: rejected
  EXPECT_EQ(svc.stats().runs, 0);
  EXPECT_EQ(svc.stats().stale_scan_skips, 1);

  deg.set_mode(ScanFaultMode::kHealthy);
  clock = time::minutes(41);
  svc.advance_to(clock);
  EXPECT_EQ(svc.stats().runs, 1);
}

TEST(TurboCaService, BackwardsClockIsCountedAndIgnored) {
  auto net = small_net(6);
  turboca::TurboCaService svc({}, {}, hooks_for(*net), Rng(7));
  svc.advance_to(time::minutes(16));
  EXPECT_EQ(svc.stats().runs, 1);
  svc.advance_to(time::minutes(5));  // clock glitch: rewound feed
  EXPECT_EQ(svc.stats().runs, 1);
  EXPECT_EQ(svc.stats().clock_anomalies, 1);
  svc.advance_to(time::minutes(16));  // back at the high-water mark: no-op
  EXPECT_EQ(svc.stats().runs, 1);
  EXPECT_EQ(svc.stats().clock_anomalies, 1);
  svc.advance_to(time::minutes(31));  // normal service resumes
  EXPECT_EQ(svc.stats().runs, 2);
}

TEST(ReservedCaService, DegradedInputsAndClockGuards) {
  auto net = small_net(6);
  Time clock = time::minutes(1);
  DegradedScanHooks deg(hooks_for(*net), [&clock] { return clock; }, Rng(3));
  turboca::ReservedCaService::Config rcfg;
  rcfg.max_scan_age = time::minutes(30);
  turboca::ReservedCaService svc(rcfg, {}, deg.hooks(), Rng(8));

  (void)deg.hooks().scan();  // healthy cache at t=1min
  deg.set_mode(ScanFaultMode::kEmpty);
  clock = time::hours(5);
  svc.advance_to(clock);
  EXPECT_EQ(svc.stats().runs, 0);
  EXPECT_EQ(svc.stats().empty_scan_skips, 1);

  deg.set_mode(ScanFaultMode::kStale);
  clock = time::hours(5) + time::minutes(15);
  svc.advance_to(clock);  // cache is hours old
  EXPECT_EQ(svc.stats().runs, 0);
  EXPECT_EQ(svc.stats().stale_scan_skips, 1);

  deg.set_mode(ScanFaultMode::kHealthy);
  clock = time::hours(5) + time::minutes(30);
  svc.advance_to(clock);
  EXPECT_EQ(svc.stats().runs, 1);

  svc.advance_to(time::hours(2));  // rewound clock
  EXPECT_EQ(svc.stats().clock_anomalies, 1);
  EXPECT_EQ(svc.stats().runs, 1);
}

// ------------------------------------------------------------ DFS radar --

TEST(RadarFallback, StrikeOnUncoveredDfsApStillEvacuates) {
  flowsim::Network net{flowsim::Network::Config{}};
  const ClientCapability cap{WifiStandard::k80211ac, true, ChannelWidth::MHz80,
                             2, true, true};
  // Placed directly on a DFS channel: no fallback has ever been computed.
  const ApId a = net.add_ap(Position{0, 0}, ChannelWidth::MHz80,
                            Channel{Band::G5, 52, ChannelWidth::MHz20});
  net.add_client(a, Position{3, 0}, cap, 5.0);

  net.radar_event(a);
  EXPECT_EQ(net.radar_evacuations(), 1);
  EXPECT_FALSE(net.aps()[0].channel.is_dfs());
  // Off DFS the fallback is cleared — nothing stale to mis-vacate to later.
  EXPECT_FALSE(net.aps()[0].dfs_fallback.has_value());

  net.radar_event(a);  // no-op off DFS
  EXPECT_EQ(net.radar_evacuations(), 1);
}

TEST(RadarFallback, ApplyPlanOntoDfsArmsNonDfsFallback) {
  flowsim::Network net{flowsim::Network::Config{}};
  const ClientCapability cap{WifiStandard::k80211ac, true, ChannelWidth::MHz80,
                             2, true, true};
  const ApId a = net.add_ap(Position{0, 0}, ChannelWidth::MHz80,
                            Channel{Band::G5, 36, ChannelWidth::MHz20});
  net.add_client(a, Position{3, 0}, cap, 5.0);

  net.apply_plan(ChannelPlan{{a, Channel{Band::G5, 100, ChannelWidth::MHz20}}});
  ASSERT_TRUE(net.aps()[0].dfs_fallback.has_value());
  EXPECT_FALSE(net.aps()[0].dfs_fallback->is_dfs());

  const Channel fallback = *net.aps()[0].dfs_fallback;
  net.radar_event(a);
  EXPECT_EQ(net.aps()[0].channel, fallback);
  EXPECT_FALSE(net.aps()[0].channel.is_dfs());
}

TEST(RadarFallback, BurstThroughInjectorNeverStrandsTheAp) {
  flowsim::Network net{flowsim::Network::Config{}};
  const ClientCapability cap{WifiStandard::k80211ac, true, ChannelWidth::MHz80,
                             2, true, true};
  const ApId a = net.add_ap(Position{0, 0}, ChannelWidth::MHz80,
                            Channel{Band::G5, 60, ChannelWidth::MHz20});
  net.add_client(a, Position{3, 0}, cap, 5.0);

  FaultPlan plan;
  plan.radar_burst(time::millis(0), 0, /*count=*/4, time::millis(5));
  FaultHandlers h;
  h.radar = [&](int ap) { net.radar_event(ApId{static_cast<std::uint32_t>(ap)}); };
  FaultInjector inj(plan, h);
  inj.advance_to(time::seconds(1));

  EXPECT_EQ(inj.stats().radar, 4);
  // The first strike evacuates to non-DFS; the rest are no-ops — the
  // fallback chain terminates instead of bouncing between DFS channels.
  EXPECT_EQ(net.radar_evacuations(), 1);
  EXPECT_FALSE(net.aps()[0].channel.is_dfs());
}

TEST(RadarFallback, RepeatStrikeWithinEpochDoesNotDoubleCountDegradation) {
  flowsim::Network net{flowsim::Network::Config{}};
  const ClientCapability cap{WifiStandard::k80211ac, true, ChannelWidth::MHz80,
                             2, true, true};
  const Channel ch52{Band::G5, 52, ChannelWidth::MHz20};
  const ApId a = net.add_ap(Position{0, 0}, ChannelWidth::MHz80, ch52);
  net.add_client(a, Position{3, 0}, cap, 5.0);

  net.radar_event(a);
  EXPECT_EQ(net.radar_evacuations(), 1);
  EXPECT_EQ(net.radar_duplicates(), 0);
  EXPECT_TRUE(net.radar_struck(ch52));
  const double disruption_after_first = net.disruption_client_seconds();

  // The planner (or a rollout revert) puts the AP back onto the channel
  // radar already cleared, before the non-occupancy epoch expires. The next
  // strike must still vacate the AP but not double-book the degradation
  // counters — this is the re-arm bug: each strike used to count as a fresh
  // evacuation no matter how many times the same channel was struck.
  net.apply_plan(ChannelPlan{{a, ch52}});
  ASSERT_EQ(net.aps()[0].channel, ch52);
  net.radar_event(a);
  EXPECT_FALSE(net.aps()[0].channel.is_dfs());  // still evacuates
  EXPECT_EQ(net.radar_evacuations(), 1);        // but counted once per epoch
  EXPECT_EQ(net.radar_duplicates(), 1);
  EXPECT_DOUBLE_EQ(net.disruption_client_seconds(), disruption_after_first);

  // A new non-occupancy epoch re-arms the channel: the next strike is a
  // genuine evacuation again.
  net.rearm_radar();
  EXPECT_FALSE(net.radar_struck(ch52));
  net.apply_plan(ChannelPlan{{a, ch52}});
  net.radar_event(a);
  EXPECT_EQ(net.radar_evacuations(), 2);
  EXPECT_EQ(net.radar_duplicates(), 1);
  EXPECT_GT(net.disruption_client_seconds(), disruption_after_first);
}

// -------------------------------------------- FastACK safe-disable / GC --

// Same minimal rig as test_fastack.cpp: one AP, agent installed, wire
// captured, segments driven by hand.
class FaultRig : public ::testing::Test {
 protected:
  void SetUp() override { init({}); }

  void init(fastack::FastAckAgent::Config cfg) {
    agent_.reset();
    client_.reset();
    ap_.reset();
    medium_.reset();
    wire_.clear();
    medium_ = std::make_unique<mac::Medium>(sim_, mac::MediumConfig{}, Rng(1));
    AccessPoint::Config acfg;
    acfg.id = ApId{0};
    ap_ = std::make_unique<AccessPoint>(sim_, *medium_, acfg, Rng(2));
    ClientStation::Config ccfg;
    ccfg.id = StationId{7};
    ccfg.pos = Position{5, 0};
    client_ = std::make_unique<ClientStation>(sim_, *medium_, ccfg, Rng(3));
    ap_->associate(client_.get());
    agent_ = std::make_unique<fastack::FastAckAgent>(sim_, *ap_, cfg);
    ap_->set_interceptor(agent_.get());
    ap_->set_wire_out([this](TcpSegment s) { wire_.push_back(std::move(s)); });
  }

  static TcpSegment data(FlowId flow, std::uint64_t seq,
                         std::uint32_t len = 1460) {
    TcpSegment seg;
    seg.flow = flow;
    seg.dst_station = StationId{7};
    seg.seq = seq;
    seg.payload = len;
    return seg;
  }

  static TcpSegment client_ack(FlowId flow, std::uint64_t ackno) {
    TcpSegment a;
    a.flow = flow;
    a.is_ack = true;
    a.ack = ackno;
    a.rwnd = 1'048'576;
    return a;
  }

  Simulator sim_;
  std::unique_ptr<mac::Medium> medium_;
  std::unique_ptr<AccessPoint> ap_;
  std::unique_ptr<ClientStation> client_;
  std::unique_ptr<fastack::FastAckAgent> agent_;
  std::vector<TcpSegment> wire_;
};

TEST_F(FaultRig, AnomalyRoutesToBypassNotException) {
  const FlowId f{1};
  TcpSegment seg = data(f, 0);
  agent_->on_downlink_data(seg);
  agent_->on_80211_delivered(data(f, 0));
  EXPECT_GT(agent_->stats().fast_acks_sent, 0u);

  agent_->inject_anomaly(f);
  TcpSegment next = data(f, 1460);
  // The poisoned flow drops to plain forwarding instead of throwing.
  EXPECT_EQ(agent_->on_downlink_data(next),
            TcpInterceptor::DataAction::kForward);
  EXPECT_EQ(agent_->stats().bypass_activations, 1u);
  EXPECT_EQ(agent_->stats().bypassed_segments, 1u);
  const fastack::FlowState* s = agent_->flow_state(f);
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->bypassed);
  EXPECT_TRUE(s->retx_cache.empty());  // heavy state released

  // Client ACKs pass upstream untouched: the sender's own machinery owns
  // recovery now.
  EXPECT_FALSE(agent_->on_uplink_ack(client_ack(f, 1460)));
  TcpSegment more = data(f, 2920);
  EXPECT_EQ(agent_->on_downlink_data(more),
            TcpInterceptor::DataAction::kForward);
  EXPECT_EQ(agent_->stats().bypassed_segments, 2u);
  EXPECT_EQ(agent_->stats().bypass_activations, 1u);  // activated once
}

TEST_F(FaultRig, BypassDisabledFailsHard) {
  fastack::FastAckAgent::Config cfg;
  cfg.bypass_on_anomaly = false;
  init(cfg);
  const FlowId f{1};
  TcpSegment seg = data(f, 0);
  agent_->on_downlink_data(seg);
  agent_->inject_anomaly(f);
  TcpSegment next = data(f, 1460);
  EXPECT_THROW(agent_->on_downlink_data(next), std::logic_error);
}

TEST_F(FaultRig, CorruptImportIsQuarantinedAtTheBorder) {
  fastack::FlowState bad;
  bad.initialized = true;
  bad.client = StationId{7};
  bad.seq_fack = 5000;  // fack > exp: impossible in a correct execution
  bad.seq_exp = 1000;
  bad.seq_high = 1000;
  agent_->import_flow(FlowId{2}, std::move(bad));
  const fastack::FlowState* s = agent_->flow_state(FlowId{2});
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->bypassed);
  EXPECT_EQ(agent_->stats().bypass_activations, 1u);
}

TEST_F(FaultRig, IdleFlowsAreGarbageCollected) {
  fastack::FastAckAgent::Config cfg;
  cfg.flow_idle_timeout = time::millis(10);
  init(cfg);
  TcpSegment s1 = data(FlowId{1}, 0);
  TcpSegment s2 = data(FlowId{2}, 0);
  agent_->on_downlink_data(s1);
  agent_->on_downlink_data(s2);
  sim_.run_until(time::millis(5));
  TcpSegment s1b = data(FlowId{1}, 1460);  // flow 1 stays active
  agent_->on_downlink_data(s1b);
  sim_.run_until(time::millis(12));

  agent_->gc_idle_flows();
  EXPECT_EQ(agent_->tracked_flows(), 1u);  // flow 2 idle 12ms > 10ms
  EXPECT_EQ(agent_->stats().flows_evicted_idle, 1u);
  EXPECT_NE(agent_->flow_state(FlowId{1}), nullptr);
  EXPECT_EQ(agent_->flow_state(FlowId{2}), nullptr);

  sim_.run_until(time::millis(30));
  agent_->gc_idle_flows();
  EXPECT_EQ(agent_->tracked_flows(), 0u);
  EXPECT_EQ(agent_->stats().flows_evicted_idle, 2u);
}

TEST_F(FaultRig, FlowTableStaysBounded) {
  fastack::FastAckAgent::Config cfg;
  cfg.max_flows = 4;
  init(cfg);
  for (std::uint32_t i = 11; i <= 16; ++i) {
    TcpSegment seg = data(FlowId{i}, 0);
    agent_->on_downlink_data(seg);
    EXPECT_LE(agent_->tracked_flows(), 4u);
  }
  EXPECT_EQ(agent_->tracked_flows(), 4u);
  EXPECT_EQ(agent_->stats().flows_evicted_capacity, 2u);
  // LRU with deterministic lowest-id tie-break: 11 and 12 made room.
  EXPECT_EQ(agent_->flow_state(FlowId{11}), nullptr);
  EXPECT_EQ(agent_->flow_state(FlowId{12}), nullptr);
  EXPECT_NE(agent_->flow_state(FlowId{13}), nullptr);
  EXPECT_NE(agent_->flow_state(FlowId{16}), nullptr);
}

TEST_F(FaultRig, CrashResetLosesEveryFlow) {
  TcpSegment s1 = data(FlowId{1}, 0);
  TcpSegment s2 = data(FlowId{2}, 0);
  agent_->on_downlink_data(s1);
  agent_->on_downlink_data(s2);
  agent_->crash_reset();
  EXPECT_EQ(agent_->tracked_flows(), 0u);
  EXPECT_EQ(agent_->stats().flows_lost_to_crash, 2u);
  // Flows re-create from scratch on the next segment.
  TcpSegment s3 = data(FlowId{1}, 99999);
  agent_->on_downlink_data(s3);
  EXPECT_EQ(agent_->tracked_flows(), 1u);
  EXPECT_FALSE(agent_->flow_state(FlowId{1})->bypassed);
}

// ------------------------------------------------- testbed-level faults --

TEST(TestbedFaults, ApCrashFlowsRecoverOrStallCleanly) {
  scenario::TestbedConfig cfg;
  cfg.n_aps = 2;
  cfg.n_clients_per_ap = 1;
  cfg.duration = time::seconds(4);
  cfg.warmup = time::millis(1);
  cfg.fastack = {true};
  cfg.seed = 5;
  scenario::Testbed tb(cfg);

  tb.simulator().schedule_at(time::seconds(1), [&] { tb.crash_ap(0); });
  std::uint64_t snap0 = 0, snap1 = 0;
  tb.simulator().schedule_at(time::millis(2500), [&] {
    snap0 = tb.client(0, 0).bytes_delivered();
    snap1 = tb.client(1, 0).bytes_delivered();
  });
  tb.run();

  EXPECT_GE(tb.agent(0)->stats().flows_lost_to_crash, 1u);
  // The untouched AP's flow keeps moving.
  EXPECT_GT(tb.client(1, 0).bytes_delivered(), snap1 + 100'000u);
  // The crashed AP's flow either recovers end to end, or — when the client
  // was stranded behind the lost fast-ACK point, bytes no one has any more —
  // degrades to a bounded zero-window stall (the honest PEP crash cost).
  const bool progressed =
      tb.client(0, 0).bytes_delivered() > snap0 + 100'000u;
  const auto& snd = tb.sender(0, 0);
  const bool clean_stall =
      snd.peer_rwnd() < 1460 || snd.stats().zero_window_probes > 0;
  EXPECT_TRUE(progressed || clean_stall)
      << "bytes " << snap0 << " -> " << tb.client(0, 0).bytes_delivered()
      << ", rwnd " << snd.peer_rwnd();
}

TEST(TestbedFaults, LinkFlapIsAbsorbedByRtoRecovery) {
  scenario::TestbedConfig cfg;
  cfg.n_aps = 1;
  cfg.n_clients_per_ap = 2;
  cfg.duration = time::seconds(4);
  cfg.warmup = time::millis(1);
  cfg.fastack = {true};
  cfg.seed = 11;
  scenario::Testbed tb(cfg);

  FaultPlan plan;
  plan.link_flap(time::seconds(1), 0, /*flaps=*/3, time::millis(50));
  FaultHandlers h;
  h.link_down = [&](int l) { tb.down_link(l).set_up(false); };
  h.link_up = [&](int l) { tb.down_link(l).set_up(true); };
  FaultInjector inj(plan, h);
  inj.arm(tb.simulator());

  std::vector<std::uint64_t> snap(2);
  tb.simulator().schedule_at(time::millis(2500), [&] {
    snap[0] = tb.client(0, 0).bytes_delivered();
    snap[1] = tb.client(0, 1).bytes_delivered();
  });
  tb.run();

  EXPECT_EQ(inj.stats().link_down, 3);
  EXPECT_TRUE(tb.down_link(0).is_up());
  EXPECT_GT(tb.down_link(0).outage_drops(), 0u);
  // Both flows resumed after the flaps: the outage is an RTO blip, not a
  // wedge.
  EXPECT_GT(tb.client(0, 0).bytes_delivered(), snap[0] + 100'000u);
  EXPECT_GT(tb.client(0, 1).bytes_delivered(), snap[1] + 100'000u);
}

// ------------------------------------------------------------ chaos soak --

// One testbed run under a random fault plan. Returns everything the
// determinism assertion needs to compare bit-for-bit.
struct SoakResult {
  std::vector<std::uint64_t> bytes;
  std::vector<FaultEvent> log;
  std::uint64_t bypass_activations = 0;
  std::uint64_t flows_lost = 0;
  bool anomaly_armed = false;
  bool ok = true;
};

SoakResult run_testbed_soak(std::uint64_t sim_seed, std::uint64_t plan_seed) {
  SoakResult r;
  scenario::TestbedConfig cfg;
  cfg.n_aps = 2;
  cfg.n_clients_per_ap = 2;
  cfg.duration = time::seconds(5);
  cfg.warmup = time::millis(200);
  cfg.fastack = {true};
  cfg.agent.max_flows = 8;
  cfg.seed = sim_seed;
  scenario::Testbed tb(cfg);

  FaultPlan::RandomConfig rc;
  rc.horizon = time::seconds(2);  // chaos window; the rest is recovery
  rc.n_aps = 2;
  rc.n_links = 2;
  rc.n_events = 5;
  rc.allow_radar = false;       // flowsim-side faults live in the other soak
  rc.allow_scan_faults = false;
  rc.allow_telemetry_faults = false;
  rc.allow_clock_faults = false;
  rc.max_outage = time::millis(300);
  FaultPlan plan = FaultPlan::random(plan_seed, rc);

  FaultHandlers h;
  h.ap_crash = [&](int ap) { tb.crash_ap(ap); };
  h.link_down = [&](int l) { tb.down_link(l).set_up(false); };
  h.link_up = [&](int l) { tb.down_link(l).set_up(true); };
  FaultInjector inj(plan, h);
  inj.arm(tb.simulator());

  // Well after the chaos window, poison one flow's state: the anomaly must
  // surface as a bypass activation, never as an exception.
  tb.simulator().schedule_at(time::millis(2600), [&] {
    if (tb.agent_mut(0)->flow_state(FlowId{0}) != nullptr) {
      tb.agent_mut(0)->inject_anomaly(FlowId{0});
      r.anomaly_armed = true;
    }
  });

  std::vector<std::uint64_t> snap(4);
  tb.simulator().schedule_at(time::millis(3600), [&] {
    for (int i = 0; i < 4; ++i)
      snap[static_cast<std::size_t>(i)] =
          tb.client(i / 2, i % 2).bytes_delivered();
  });

  tb.run();  // any W11_CHECK violation throws out of here

  for (int i = 0; i < 4; ++i) {
    const std::uint64_t fin = tb.client(i / 2, i % 2).bytes_delivered();
    r.bytes.push_back(fin);
    const auto& snd = tb.sender(i / 2, i % 2);
    const bool progressed = fin > snap[static_cast<std::size_t>(i)];
    const bool clean_stall =
        snd.peer_rwnd() < 1460 || snd.stats().zero_window_probes > 0;
    if (!(progressed || clean_stall)) r.ok = false;
  }
  for (int a = 0; a < 2; ++a) {
    r.bypass_activations += tb.agent(a)->stats().bypass_activations;
    r.flows_lost += tb.agent(a)->stats().flows_lost_to_crash;
    if (tb.agent(a)->tracked_flows() > cfg.agent.max_flows) r.ok = false;
  }
  r.log = inj.log();
  return r;
}

TEST(ChaosSoak, TestbedSurvivesRandomFaultPlans) {
  for (std::uint64_t sim_seed : {1u, 2u, 3u}) {
    for (std::uint64_t plan_seed : {11u, 12u, 13u, 14u}) {
      const SoakResult r = run_testbed_soak(sim_seed, plan_seed);
      EXPECT_TRUE(r.ok) << "sim seed " << sim_seed << ", plan seed "
                        << plan_seed;
      if (r.anomaly_armed) {
        EXPECT_GE(r.bypass_activations, 1u)
            << "sim seed " << sim_seed << ", plan seed " << plan_seed;
      }
    }
  }
}

TEST(ChaosSoak, TestbedRunIsReproducible) {
  const SoakResult a = run_testbed_soak(2, 12);
  const SoakResult b = run_testbed_soak(2, 12);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.bypass_activations, b.bypass_activations);
  EXPECT_EQ(a.flows_lost, b.flows_lost);
}

// The polling-loop half: radar, scan degradation, telemetry drops and clock
// glitches against the channel-assignment service and the collector.
struct PollResult {
  ChannelPlan plan;
  std::vector<FaultEvent> log;
  int switches = 0;
  int evacuations = 0;
  int runs = 0;
  int clock_anomalies = 0;
  std::uint64_t records_written = 0;
  std::uint64_t records_dropped = 0;
  bool ok = true;
};

PollResult run_polling_soak(std::uint64_t net_seed, std::uint64_t plan_seed) {
  PollResult r;
  workload::CampusConfig cc;
  cc.n_aps = 8;
  cc.seed = net_seed;
  auto net = workload::make_campus(cc);

  Time clock{};
  DegradedScanHooks deg(hooks_for(*net), [&clock] { return clock; },
                        Rng(net_seed * 31 + 7));
  turboca::TurboCaService::Schedule sched;
  sched.max_scan_age = time::hours(1);
  turboca::TurboCaService svc({}, sched, deg.hooks(), Rng(net_seed));
  telemetry::NetworkCollector coll;

  const Time horizon = time::hours(6);
  const Time step = time::minutes(15);

  FaultPlan::RandomConfig rc;
  rc.horizon = horizon;
  rc.n_aps = cc.n_aps;
  rc.n_events = 8;
  rc.allow_ap_crash = false;  // testbed-side faults live in the other soak
  rc.allow_link_faults = false;
  FaultPlan plan = FaultPlan::random(plan_seed, rc);

  Time last_observed{};
  FaultHandlers h;
  h.radar = [&](int ap) { net->radar_event(ApId{static_cast<std::uint32_t>(ap)}); };
  h.scan_degrade = [&](ScanFaultMode m, double keep) { deg.set_mode(m, keep); };
  h.telemetry_drop = [&](int n) { coll.drop_next(n); };
  h.clock_jump = [&](Time back) {
    // The harness clock glitches backwards, then the next tick recovers.
    svc.advance_to(last_observed - back);
  };
  FaultInjector inj(plan, h);

  std::uint64_t ticks = 0;
  for (Time t{}; t <= horizon; t = t + step, ++ticks) {
    clock = t;
    inj.advance_to(t);
    svc.advance_to(t);
    last_observed = t;
    const auto ev = net->evaluate();
    coll.record(*net, ev, t);
  }

  // No AP may ever end up stranded: on a DFS channel, a live non-DFS
  // fallback must be armed.
  for (const auto& ap : net->aps()) {
    if (ap.channel.is_dfs() &&
        !(ap.dfs_fallback.has_value() && !ap.dfs_fallback->is_dfs()))
      r.ok = false;
  }
  if (coll.records_written() + coll.records_dropped() != ticks) r.ok = false;

  r.plan = net->current_plan();
  r.log = inj.log();
  r.switches = net->total_switches();
  r.evacuations = net->radar_evacuations();
  r.runs = svc.stats().runs;
  r.clock_anomalies = svc.stats().clock_anomalies;
  r.records_written = coll.records_written();
  r.records_dropped = coll.records_dropped();
  if (r.clock_anomalies != inj.stats().clock_jump) r.ok = false;
  if (r.runs <= 0) r.ok = false;
  return r;
}

TEST(ChaosSoak, PollingLoopSurvivesRandomFaultPlans) {
  for (std::uint64_t net_seed : {1u, 2u}) {
    for (std::uint64_t plan_seed : {21u, 22u, 23u, 24u}) {
      const PollResult r = run_polling_soak(net_seed, plan_seed);
      EXPECT_TRUE(r.ok) << "net seed " << net_seed << ", plan seed "
                        << plan_seed << ", runs " << r.runs
                        << ", anomalies " << r.clock_anomalies;
    }
  }
}

TEST(ChaosSoak, PollingLoopIsReproducible) {
  const PollResult a = run_polling_soak(1, 23);
  const PollResult b = run_polling_soak(1, 23);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.plan, b.plan);
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.evacuations, b.evacuations);
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.records_written, b.records_written);
}

}  // namespace
}  // namespace w11
