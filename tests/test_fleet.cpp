// Fleet-scale sharded planning pipeline (DESIGN.md §15): campus
// partitioning, bounded queues, cadence scheduling, and the controller's
// worker-count byte-equivalence contract. Suites are named Fleet* so the CI
// TSAN job picks them up (the SPSC queue and the pool-sharded planning path
// are the threaded surfaces).

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "exec/task_pool.hpp"
#include "fleet/controller.hpp"
#include "fleet/partition.hpp"
#include "fleet/queues.hpp"
#include "fleet/scheduler.hpp"
#include "scenario/fleet_harness.hpp"

using namespace w11;

namespace {

constexpr Dbm kFloor = -85.0;

scenario::FleetPopulationConfig small_population() {
  scenario::FleetPopulationConfig pop;
  pop.campuses = 10;
  pop.aps_min = 5;
  pop.aps_max = 12;
  pop.seed = 42;
  return pop;
}

// Campus membership as comparable value: key -> sorted member ids.
std::map<std::uint32_t, std::vector<std::uint32_t>> campus_sets(
    const fleet::FleetPartition& part) {
  std::map<std::uint32_t, std::vector<std::uint32_t>> out;
  for (const fleet::Campus& c : part.campuses) {
    std::vector<std::uint32_t>& ids = out[c.key];
    for (const ApScan& s : c.scans) ids.push_back(s.id.value());
    std::sort(ids.begin(), ids.end());
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// FleetPartition

TEST(FleetPartitionTest, ChainCampusesPartitionExactly) {
  scenario::FleetPopulationConfig pop = small_population();
  pop.shape = scenario::FleetPopulationConfig::Shape::kChain;
  pop.cross_campus_subfloor = 0.5;  // audible but sub-floor: must not merge
  const std::vector<ApScan> scans = scenario::make_fleet_scans(pop, Time{});

  const fleet::FleetPartition part = fleet::partition_fleet(scans, kFloor);
  EXPECT_EQ(part.campuses.size(), static_cast<std::size_t>(pop.campuses));
  EXPECT_EQ(part.total_aps, scans.size());
  // Keys ascend and are the min member id of each campus.
  for (std::size_t c = 0; c + 1 < part.campuses.size(); ++c)
    EXPECT_LT(part.campuses[c].key, part.campuses[c + 1].key);
  for (const fleet::Campus& campus : part.campuses) {
    std::uint32_t min_id = campus.scans.front().id.value();
    for (const ApScan& s : campus.scans)
      min_id = std::min(min_id, s.id.value());
    EXPECT_EQ(campus.key, min_id);
  }
}

TEST(FleetPartitionTest, ShuffledEpochGivesSameCampuses) {
  const std::vector<ApScan> scans =
      scenario::make_fleet_scans(small_population(), Time{});
  std::vector<ApScan> shuffled = scans;
  std::mt19937 g(7);
  std::shuffle(shuffled.begin(), shuffled.end(), g);

  const auto a = campus_sets(fleet::partition_fleet(scans, kFloor));
  const auto b = campus_sets(fleet::partition_fleet(shuffled, kFloor));
  EXPECT_EQ(a, b);  // same keys, same member sets, independent of scan order
}

TEST(FleetPartitionTest, FloorRuleMatchesScanIndex) {
  // Two APs joined by an edge exactly at the floor: a contender
  // (ScanIndex's rule is !(rssi < floor)); just below: not.
  auto make = [](Dbm rssi) {
    std::vector<ApScan> scans(2);
    scans[0].id = ApId(0);
    scans[1].id = ApId(1);
    scans[0].neighbors.push_back(NeighborReport{ApId(1), rssi});
    return scans;
  };
  EXPECT_EQ(fleet::partition_fleet(make(kFloor), kFloor).campuses.size(), 1u);
  EXPECT_EQ(fleet::partition_fleet(make(kFloor - 0.1), kFloor).campuses.size(),
            2u);
  // Reports of APs absent from the epoch never create edges.
  std::vector<ApScan> ghost(1);
  ghost[0].id = ApId(5);
  ghost[0].neighbors.push_back(NeighborReport{ApId(99), -40.0});
  EXPECT_EQ(fleet::partition_fleet(ghost, kFloor).campuses.size(), 1u);
}

// ---------------------------------------------------------------------------
// FleetQueue

TEST(FleetQueueTest, SpscOverflowRejectsAndCounts) {
  fleet::SpscQueue<int> q(4);
  for (int i = 0; i < 6; ++i) q.try_push(i);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.free_slots(), 0u);
  const fleet::QueueStats s = q.stats();
  EXPECT_EQ(s.pushed, 4u);
  EXPECT_EQ(s.rejected, 2u);
  EXPECT_EQ(s.high_water, 4u);
  for (int i = 0; i < 4; ++i) {
    const auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);  // FIFO
  }
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_EQ(q.stats().popped, 4u);
}

TEST(FleetQueueTest, SpscBackpressureRecoversAfterDrain) {
  fleet::SpscQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(*q.try_pop(), 1);
  EXPECT_TRUE(q.try_push(4));  // freed slot is reusable
  EXPECT_EQ(*q.try_pop(), 2);
  EXPECT_EQ(*q.try_pop(), 4);
}

TEST(FleetQueueTest, SpscTwoThreadStream) {
  // Producer/consumer on separate threads: every accepted element arrives
  // exactly once, in order (the TSAN job exercises the ring's atomics).
  fleet::SpscQueue<int> q(64);
  constexpr int kN = 5000;
  std::vector<int> got;
  got.reserve(kN);
  std::thread consumer([&] {
    while (got.size() < kN) {
      if (auto v = q.try_pop())
        got.push_back(*v);
      else
        std::this_thread::yield();
    }
  });
  for (int i = 0; i < kN; ++i) {
    while (!q.try_push(i)) std::this_thread::yield();
  }
  consumer.join();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) ASSERT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(FleetQueueTest, MpmcBoundedAndCounted) {
  fleet::MpmcQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.stats().rejected, 1u);
  EXPECT_EQ(*q.try_pop(), 1);
  EXPECT_TRUE(q.try_push(4));
  EXPECT_EQ(*q.try_pop(), 2);
  EXPECT_EQ(*q.try_pop(), 4);
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_EQ(q.stats().high_water, 2u);
}

// ---------------------------------------------------------------------------
// FleetScheduler

TEST(FleetSchedulerTest, FirstSightingPlansImmediatelyAtSlowTier) {
  fleet::CadenceScheduler sched({}, 1);
  sched.sync({10, 20, 30}, time::minutes(1));
  const std::vector<fleet::PlanJob> jobs = sched.due(time::minutes(1));
  ASSERT_EQ(jobs.size(), 3u);
  for (const fleet::PlanJob& j : jobs) EXPECT_EQ(j.tier, fleet::Tier::kSlow);
  EXPECT_EQ(jobs[0].campus_key, 10u);  // ascending key order
  EXPECT_EQ(jobs[2].campus_key, 30u);
}

TEST(FleetSchedulerTest, DeferredJobStaysDue) {
  fleet::CadenceScheduler sched({}, 1);
  sched.sync({7}, Time{});
  ASSERT_EQ(sched.due(Time{}).size(), 1u);
  // Not fired (backpressure deferred it): still due, same tier.
  const auto again = sched.due(Time{});
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].tier, fleet::Tier::kSlow);
  sched.fired(again[0], Time{});
  EXPECT_TRUE(sched.due(Time{}).empty());
}

TEST(FleetSchedulerTest, FastTierRefiresWithinOnePeriodAndStaggers) {
  fleet::CadenceScheduler::Cadence cad;
  fleet::CadenceScheduler sched(cad, 99);
  std::vector<std::uint32_t> keys;
  for (std::uint32_t k = 0; k < 8; ++k) keys.push_back(k * 100);
  sched.sync(keys, Time{});
  for (const fleet::PlanJob& j : sched.due(Time{})) sched.fired(j, Time{});
  EXPECT_TRUE(sched.due(Time{}).empty());

  // Every campus fires again within one fast period (a staggered medium or
  // slow anchor may expire first and absorb the fast pass), but not all on
  // the same minute — the phase grid staggers them.
  std::set<std::int64_t> first_fire_minute;
  std::set<std::uint32_t> fired;
  for (std::int64_t m = 1; m <= 15 && fired.size() < keys.size(); ++m) {
    const Time now = time::minutes(m);
    for (const fleet::PlanJob& j : sched.due(now)) {
      if (fired.insert(j.campus_key).second) first_fire_minute.insert(m);
      EXPECT_NE(j.tier, fleet::Tier::kReplan);
      sched.fired(j, now);
    }
  }
  EXPECT_EQ(fired.size(), keys.size());
  EXPECT_GT(first_fire_minute.size(), 1u) << "no stagger: all fired together";
}

TEST(FleetSchedulerTest, ReplanLeadsTheQueueAndClearsOnFiring) {
  fleet::CadenceScheduler sched({}, 1);
  sched.sync({5, 6, 7}, Time{});
  for (const fleet::PlanJob& j : sched.due(Time{})) sched.fired(j, Time{});
  sched.request_replan(6);
  const auto jobs = sched.due(Time{});
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].campus_key, 6u);
  EXPECT_EQ(jobs[0].tier, fleet::Tier::kReplan);
  // Sticky until fired.
  EXPECT_EQ(sched.due(Time{}).size(), 1u);
  sched.fired(jobs[0], Time{});
  EXPECT_TRUE(sched.due(Time{}).empty());
  EXPECT_EQ(sched.stats().replans_requested, 1u);
}

TEST(FleetSchedulerTest, AbsentCampusIsDropped) {
  fleet::CadenceScheduler sched({}, 1);
  sched.sync({1, 2}, Time{});
  EXPECT_EQ(sched.campus_count(), 2u);
  sched.sync({2}, time::minutes(1));
  EXPECT_EQ(sched.campus_count(), 1u);
  sched.request_replan(1);  // unknown now: ignored
  for (const fleet::PlanJob& j : sched.due(time::minutes(1)))
    EXPECT_EQ(j.campus_key, 2u);
  EXPECT_EQ(sched.stats().campuses_dropped, 1u);
}

// ---------------------------------------------------------------------------
// FleetController / end-to-end pipeline

namespace {

scenario::FleetScenarioConfig small_scenario(exec::TaskPool* pool) {
  scenario::FleetScenarioConfig cfg;
  cfg.population = small_population();
  cfg.controller.seed = 7;
  cfg.controller.pool = pool;
  cfg.polls = 3;
  return cfg;
}

}  // namespace

TEST(FleetControllerTest, EndToEndPipelineDeliversEveryCampus) {
  exec::TaskPool pool(2);
  const scenario::FleetScenarioResult r =
      scenario::run_fleet_scenario(small_scenario(&pool));
  EXPECT_EQ(r.campuses, 10u);
  EXPECT_GT(r.fleet_aps, 0u);
  // First poll plans every campus; later polls at least deliver nothing
  // extra before the fast cadence elapses — but every plan that was
  // delivered went through ctrl fanout and telemetry.
  EXPECT_GE(r.stats.plans_delivered, r.campuses);
  EXPECT_EQ(r.plans_committed, r.stats.plans_delivered);
  EXPECT_EQ(r.ctrl_campuses, r.campuses);
  EXPECT_EQ(r.plan_seconds.size(), r.stats.plans_delivered);
  // Batched ingest: the first full census lands one row per AP; later
  // polls fan out only the campuses the churn touched (O(churn), not
  // O(fleet)) — so strictly between one full poll and all three.
  EXPECT_GE(r.telemetry_rows, r.fleet_aps);
  EXPECT_LT(r.telemetry_rows, r.fleet_aps * static_cast<std::uint64_t>(3));
  // The assignment of record covers the whole fleet.
  EXPECT_EQ(r.final_plan.size(), r.fleet_aps);
  EXPECT_NE(r.digest, 0u);
  EXPECT_EQ(r.stats.jobs_deferred, 0u);
  // Spectrum churn at 25%: the per-campus stats caches hit on the rest.
  EXPECT_GT(r.stats.cache_hits, 0u);
}

TEST(FleetControllerTest, SupersededEpochsAreCountedNotPlanned) {
  fleet::FleetController::Config cfg;
  cfg.seed = 3;
  exec::TaskPool pool(1);
  cfg.pool = &pool;
  fleet::FleetController ctl(cfg);
  scenario::FleetPopulationConfig pop = small_population();
  std::vector<ApScan> scans = scenario::make_fleet_scans(pop, Time{});
  for (int k = 1; k <= 3; ++k) {
    const Time t = time::minutes(k);
    for (ApScan& s : scans) s.taken_at = t;
    ASSERT_TRUE(ctl.offer_epoch(fleet::ScanEpoch{t, scans}));
  }
  ctl.tick(time::minutes(3));
  EXPECT_EQ(ctl.stats().epochs_adopted, 1u);
  EXPECT_EQ(ctl.stats().epochs_superseded, 2u);
  EXPECT_EQ(ctl.campus_count(), static_cast<std::size_t>(pop.campuses));
}

TEST(FleetControllerTest, IngestQueueBoundsAndDropsWhenFull) {
  fleet::FleetController::Config cfg;
  cfg.ingest_capacity = 2;
  exec::TaskPool pool(1);
  cfg.pool = &pool;
  fleet::FleetController ctl(cfg);
  std::vector<ApScan> scans(1);
  scans[0].id = ApId(0);
  EXPECT_TRUE(ctl.offer_epoch(fleet::ScanEpoch{time::minutes(1), scans}));
  EXPECT_TRUE(ctl.offer_epoch(fleet::ScanEpoch{time::minutes(2), scans}));
  EXPECT_FALSE(ctl.offer_epoch(fleet::ScanEpoch{time::minutes(3), scans}));
  EXPECT_EQ(ctl.ingest_stats().rejected, 1u);
  ctl.tick(time::minutes(3));
  EXPECT_TRUE(ctl.offer_epoch(fleet::ScanEpoch{time::minutes(4), scans}));
}

TEST(FleetControllerTest, OutputBackpressureDefersDeterministically) {
  fleet::FleetController::Config cfg;
  cfg.seed = 5;
  cfg.output_capacity = 3;  // 10 campuses due -> 3 jobs per tick
  exec::TaskPool pool(2);
  cfg.pool = &pool;
  fleet::FleetController ctl(cfg);
  std::vector<ApScan> scans =
      scenario::make_fleet_scans(small_population(), time::minutes(1));
  ASSERT_TRUE(ctl.offer_epoch(fleet::ScanEpoch{time::minutes(1), scans}));

  ctl.tick(time::minutes(1));
  EXPECT_EQ(ctl.stats().jobs_run, 3u);
  EXPECT_EQ(ctl.stats().jobs_deferred, 7u);
  EXPECT_EQ(ctl.stats().plans_delivered, 3u);
  // Deferred jobs keep their anchors: repeated ticks drain the backlog.
  ctl.tick(time::minutes(1));
  ctl.tick(time::minutes(1));
  ctl.tick(time::minutes(1));
  EXPECT_EQ(ctl.stats().jobs_run, 10u);
  EXPECT_EQ(ctl.stats().plans_delivered, 10u);
  EXPECT_EQ(ctl.fleet_plan().size(), scans.size());
}

TEST(FleetControllerTest, RequestReplanRunsOutOfBand) {
  fleet::FleetController::Config cfg;
  cfg.seed = 11;
  exec::TaskPool pool(2);
  cfg.pool = &pool;
  fleet::FleetController ctl(cfg);
  const std::vector<ApScan> scans =
      scenario::make_fleet_scans(small_population(), time::minutes(1));
  ASSERT_TRUE(ctl.offer_epoch(fleet::ScanEpoch{time::minutes(1), scans}));
  ctl.tick(time::minutes(1));
  const std::uint64_t first_pass = ctl.stats().jobs_run;

  const std::uint32_t key = scans.front().id.value();  // campus 0's key
  ctl.request_replan(key);
  ctl.tick(time::minutes(2));
  EXPECT_EQ(ctl.stats().replans_run, 1u);
  EXPECT_GE(ctl.stats().jobs_run, first_pass + 1);
}

// ---------------------------------------------------------------------------
// FleetGolden: worker-count byte-equivalence

TEST(FleetGoldenTest, PlanStreamIsByteIdenticalAcrossWorkerCounts) {
  std::vector<scenario::FleetScenarioResult> results;
  for (const int workers : {1, 2, 4, 8}) {
    exec::TaskPool pool(workers);
    results.push_back(scenario::run_fleet_scenario(small_scenario(&pool)));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0].digest, results[i].digest) << "workers diverge";
    EXPECT_EQ(results[0].final_plan, results[i].final_plan);
    EXPECT_EQ(results[0].netp_log_sum, results[i].netp_log_sum);
    EXPECT_EQ(results[0].stats.plans_delivered,
              results[i].stats.plans_delivered);
    EXPECT_EQ(results[0].stats.cache_hits, results[i].stats.cache_hits);
  }
}

TEST(FleetGoldenTest, RerunWithSameSeedIsIdentical) {
  exec::TaskPool pool(4);
  const auto a = scenario::run_fleet_scenario(small_scenario(&pool));
  const auto b = scenario::run_fleet_scenario(small_scenario(&pool));
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.final_plan, b.final_plan);
}

TEST(FleetGoldenTest, DifferentSeedsDiverge) {
  exec::TaskPool pool(2);
  scenario::FleetScenarioConfig cfg = small_scenario(&pool);
  const auto a = scenario::run_fleet_scenario(cfg);
  cfg.controller.seed = 8;
  const auto b = scenario::run_fleet_scenario(cfg);
  EXPECT_NE(a.digest, b.digest);
}
