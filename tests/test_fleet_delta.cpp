// Delta-epoch ingestion (DESIGN.md §16): the O(churn) fleet planning path.
//
// The load-bearing contract is *byte equivalence*: replaying the same
// census trajectory as full ScanEpochs or as DeltaEpochs must produce an
// identical plan stream — same digest, same assignment of record, at any
// worker count. The structural tests drive a delta-fed controller and a
// full-fed twin through the same trajectory and compare everything
// observable; the golden test does the same through the whole scenario
// harness with member churn on.
//
// Suites are named FleetDelta* so the CI TSAN job picks them up (the MPMC
// ingest queue and the pool-sharded planning path are the threaded
// surfaces).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "exec/task_pool.hpp"
#include "fleet/controller.hpp"
#include "fleet/delta.hpp"
#include "flowsim/scan_index.hpp"
#include "scenario/fleet_harness.hpp"

using namespace w11;

namespace {

constexpr Dbm kFloor = -85.0;

// A minimal scan: id, explicit neighbor reports, and a distinct spectrum
// snapshot so content hashes differ across APs.
ApScan ap(std::uint32_t id,
          std::vector<std::pair<std::uint32_t, Dbm>> nbrs = {},
          double util = 0.1) {
  ApScan s;
  s.id = ApId(id);
  s.band = Band::G5;
  s.current = channels::candidate_set(Band::G5, ChannelWidth::MHz40, false)
                  .front();
  s.max_width = ChannelWidth::MHz40;
  s.dfs_capable = true;
  s.load_by_width[ChannelWidth::MHz20] = 0.2;
  s.external_util[36] = util + static_cast<double>(id) * 1e-3;
  s.quality[36] = 0.9;
  s.utilization_current = util;
  for (const auto& [nid, rssi] : nbrs)
    s.neighbors.push_back(NeighborReport{ApId(nid), rssi});
  return s;
}

fleet::FleetController::Config controller_config(exec::TaskPool* pool) {
  fleet::FleetController::Config cfg;
  cfg.planner.neighbor_rssi_floor = kFloor;
  cfg.seed = 7;
  cfg.pool = pool;
  return cfg;
}

// Drive one controller with full epochs and a twin with (full, then
// deltas) through the same census trajectory, then compare everything the
// pipeline delivers. Scan-level taken_at is deliberately left alone: a
// real producer restamps only the scans it re-took, and restamping the
// whole fleet would turn every delta into an all-updated census.
// Returns the delta-fed controller's stats.
fleet::FleetController::Stats expect_twin_equivalence(
    std::vector<std::vector<ApScan>> censuses, exec::TaskPool* pool,
    Time step = time::minutes(15)) {
  fleet::FleetController full(controller_config(pool));
  fleet::FleetController delta(controller_config(pool));
  Time prev{};
  for (std::size_t p = 0; p < censuses.size(); ++p) {
    const Time t = time::nanos(static_cast<std::int64_t>(p + 1) * step.ns());
    EXPECT_TRUE(full.offer_epoch(fleet::ScanEpoch{t, censuses[p]}));
    if (p == 0) {
      EXPECT_TRUE(delta.offer_epoch(fleet::ScanEpoch{t, censuses[p]}));
    } else {
      EXPECT_TRUE(delta.offer_delta(
          fleet::diff_epochs(censuses[p - 1], censuses[p], prev, t)));
    }
    full.tick(t);
    delta.tick(t);
    prev = t;
  }
  EXPECT_EQ(full.plan_digest(), delta.plan_digest());
  EXPECT_EQ(full.fleet_plan(), delta.fleet_plan());
  EXPECT_EQ(full.campus_count(), delta.campus_count());
  EXPECT_EQ(full.fleet_aps(), delta.fleet_aps());
  for (const ApScan& s : censuses.back()) {
    const auto fk = full.campus_of(s.id);
    const auto dk = delta.campus_of(s.id);
    EXPECT_TRUE(fk.has_value());
    EXPECT_EQ(fk, dk);
  }
  EXPECT_EQ(delta.stats().deltas_adopted, censuses.size() - 1);
  EXPECT_EQ(delta.stats().deltas_rejected, 0u);
  return delta.stats();
}

}  // namespace

// ---------------------------------------------------------------------------
// The differ

TEST(FleetDeltaTest, DiffEpochsClassifiesAddUpdateRemove) {
  std::vector<ApScan> base = {ap(0), ap(1), ap(2)};
  std::vector<ApScan> next = {ap(0), ap(1, {}, 0.4), ap(3)};
  const fleet::DeltaEpoch d =
      fleet::diff_epochs(base, next, time::minutes(1), time::minutes(2));
  ASSERT_EQ(d.added.size(), 1u);
  EXPECT_EQ(d.added[0].id, ApId(3));
  ASSERT_EQ(d.updated.size(), 1u);
  EXPECT_EQ(d.updated[0].id, ApId(1));
  ASSERT_EQ(d.removed.size(), 1u);
  EXPECT_EQ(d.removed[0], ApId(2));
  EXPECT_EQ(d.base_taken_at, time::minutes(1));
  EXPECT_EQ(d.taken_at, time::minutes(2));
  EXPECT_TRUE(fleet::diff_epochs(base, base, Time{}, Time{}).empty());
}

// ---------------------------------------------------------------------------
// Structural delta application, each against a full-fed twin

TEST(FleetDeltaTest, SpectrumUpdateKeepsPartitionAndMatchesFullReplay) {
  exec::TaskPool pool(1);
  std::vector<ApScan> s0 = {ap(0, {{1, -60.0}}), ap(1, {{0, -60.0}}),
                            ap(10, {{11, -62.0}}), ap(11, {{10, -62.0}})};
  std::vector<ApScan> s1 = s0;
  s1[1].external_util[36] = 0.33;  // content change, topology unchanged
  const auto stats = expect_twin_equivalence({s0, s1}, &pool);
  // A spectrum-only update leaves the neighbor graph alone, so the delta
  // path substitutes the scan in place and repartitions nothing: the only
  // counted work is the initial full adoption (2 campuses, 4 APs).
  EXPECT_EQ(stats.campuses_repartitioned, 2u);
  EXPECT_EQ(stats.aps_repartitioned, 4u);
}

TEST(FleetDeltaTest, BridgeAddMergesCampusesLikeFullReplay) {
  exec::TaskPool pool(1);
  std::vector<ApScan> s0 = {ap(0, {{1, -60.0}}), ap(1, {{0, -60.0}}),
                            ap(10, {{11, -62.0}}), ap(11, {{10, -62.0}})};
  std::vector<ApScan> s1 = s0;
  // New AP 20 bridges both campuses one-sidedly: neither resident scan
  // changes, so the dirty closure must come from the added scan alone.
  s1.push_back(ap(20, {{1, -58.0}, {10, -59.0}}));
  expect_twin_equivalence({s0, s1}, &pool);

  fleet::FleetController ctl(controller_config(&pool));
  ctl.offer_epoch(fleet::ScanEpoch{time::minutes(15), s0});
  ctl.tick(time::minutes(15));
  EXPECT_EQ(ctl.campus_count(), 2u);
  ctl.offer_delta(fleet::diff_epochs(s0, s1, time::minutes(15),
                                     time::minutes(30)));
  ctl.tick(time::minutes(30));
  EXPECT_EQ(ctl.campus_count(), 1u);
  EXPECT_EQ(ctl.campus_of(ApId(0)), ctl.campus_of(ApId(11)));
  EXPECT_EQ(ctl.campus_of(ApId(20)), ctl.campus_of(ApId(0)));
}

TEST(FleetDeltaTest, RemovalSplitsCampusLikeFullReplay) {
  exec::TaskPool pool(1);
  // A chain 0-1-2; removing the middle AP splits the campus in two, and
  // the survivors keep their now-dangling reports of AP 1.
  std::vector<ApScan> s0 = {ap(0, {{1, -60.0}}),
                            ap(1, {{0, -60.0}, {2, -61.0}}),
                            ap(2, {{1, -61.0}})};
  std::vector<ApScan> s1 = {s0[0], s0[2]};
  expect_twin_equivalence({s0, s1}, &pool);

  fleet::FleetController ctl(controller_config(&pool));
  ctl.offer_epoch(fleet::ScanEpoch{time::minutes(15), s0});
  ctl.tick(time::minutes(15));
  EXPECT_EQ(ctl.campus_count(), 1u);
  ctl.offer_delta(fleet::diff_epochs(s0, s1, time::minutes(15),
                                     time::minutes(30)));
  ctl.tick(time::minutes(30));
  EXPECT_EQ(ctl.campus_count(), 2u);
  EXPECT_NE(ctl.campus_of(ApId(0)), ctl.campus_of(ApId(2)));
  EXPECT_EQ(ctl.campus_of(ApId(1)), std::nullopt);
  EXPECT_EQ(ctl.fleet_plan().count(ApId(1)), 0u);
}

TEST(FleetDeltaTest, GhostReportActivationMergesOnAdd) {
  exec::TaskPool pool(1);
  // AP 0 has always reported the (absent) id 99 at contender grade. When
  // AP 99 finally appears — attached to the *other* campus — the
  // pre-existing report becomes a live edge and all three must merge. The
  // added scan itself says nothing about campus {0,1}, so only the ghost
  // reverse index can find it.
  std::vector<ApScan> s0 = {ap(0, {{1, -60.0}, {99, -55.0}}),
                            ap(1, {{0, -60.0}}), ap(10, {{11, -62.0}}),
                            ap(11, {{10, -62.0}})};
  std::vector<ApScan> s1 = s0;
  s1.push_back(ap(99, {{10, -58.0}}));
  expect_twin_equivalence({s0, s1}, &pool);

  fleet::FleetController ctl(controller_config(&pool));
  ctl.offer_epoch(fleet::ScanEpoch{time::minutes(15), s0});
  ctl.tick(time::minutes(15));
  EXPECT_EQ(ctl.campus_count(), 2u);
  ctl.offer_delta(fleet::diff_epochs(s0, s1, time::minutes(15),
                                     time::minutes(30)));
  ctl.tick(time::minutes(30));
  EXPECT_EQ(ctl.campus_count(), 1u);
  EXPECT_EQ(ctl.campus_of(ApId(0)), ctl.campus_of(ApId(99)));
  EXPECT_EQ(ctl.campus_of(ApId(11)), ctl.campus_of(ApId(99)));
}

TEST(FleetDeltaTest, MemberChurnTrajectoryMatchesFullReplay) {
  // The harness's own churn generator (spectrum + member churn, including
  // campus-merging bridge adds) over several polls.
  exec::TaskPool pool(2);
  scenario::FleetPopulationConfig pop;
  pop.campuses = 8;
  pop.aps_min = 4;
  pop.aps_max = 10;
  pop.seed = 11;
  std::vector<ApScan> scans = scenario::make_fleet_scans(pop, Time{});
  std::uint32_t next_id = scans.back().id.value() + 1;
  std::vector<std::vector<ApScan>> censuses = {scans};
  Time prev = time::minutes(15);
  for (int p = 1; p < 4; ++p) {
    const Time t = time::nanos((p + 1) * time::minutes(15).ns());
    (void)scenario::evolve_population(scans, pop, 0.3, 0.1,
                                      pop.seed ^ static_cast<std::uint64_t>(p),
                                      next_id, prev, t);
    censuses.push_back(scans);
    prev = t;
  }
  expect_twin_equivalence(std::move(censuses), &pool);
}

// ---------------------------------------------------------------------------
// Chain discipline and normalization

TEST(FleetDeltaTest, BaseMismatchRejectsDeltaAndKeepsCensus) {
  exec::TaskPool pool(1);
  fleet::FleetController ctl(controller_config(&pool));
  std::vector<ApScan> s0 = {ap(0), ap(1)};
  ctl.offer_epoch(fleet::ScanEpoch{time::minutes(15), s0});
  ctl.tick(time::minutes(15));
  const std::uint64_t digest = ctl.plan_digest();

  fleet::DeltaEpoch stale;
  stale.base_taken_at = time::minutes(10);  // not the adopted epoch
  stale.taken_at = time::minutes(30);
  stale.removed.push_back(ApId(0));
  ctl.offer_delta(std::move(stale));
  // Re-tick at the same instant: no cadence tier can come due again, so
  // any new plan output could only stem from the (rejected) delta.
  ctl.tick(time::minutes(15));
  EXPECT_EQ(ctl.stats().deltas_rejected, 1u);
  EXPECT_EQ(ctl.stats().deltas_adopted, 0u);
  EXPECT_EQ(ctl.fleet_aps(), 2u);           // census untouched
  EXPECT_EQ(ctl.plan_digest(), digest);     // nothing replanned off it
}

TEST(FleetDeltaTest, ProducerMisclassificationIsNormalized) {
  exec::TaskPool pool(1);
  fleet::FleetController ctl(controller_config(&pool));
  std::vector<ApScan> s0 = {ap(0)};
  ctl.offer_epoch(fleet::ScanEpoch{time::minutes(15), s0});
  ctl.tick(time::minutes(15));

  fleet::DeltaEpoch d;
  d.base_taken_at = time::minutes(15);
  d.taken_at = time::minutes(30);
  d.updated.push_back(ap(7));     // unknown id: really an add
  d.added.push_back(ap(0, {}, 0.4));  // present id: really an update
  d.removed.push_back(ApId(42));  // unknown id: a no-op
  ctl.offer_delta(std::move(d));
  ctl.tick(time::minutes(30));
  EXPECT_EQ(ctl.stats().deltas_adopted, 1u);
  EXPECT_EQ(ctl.stats().deltas_normalized, 3u);
  EXPECT_EQ(ctl.fleet_aps(), 2u);
  EXPECT_TRUE(ctl.campus_of(ApId(7)).has_value());
  const std::vector<ApScan>* slice =
      ctl.campus_scans(*ctl.campus_of(ApId(0)));
  ASSERT_NE(slice, nullptr);
  EXPECT_DOUBLE_EQ(slice->front().utilization_current, 0.4);
}

TEST(FleetDeltaTest, IngestOverflowSurfacesAsEpochsDropped) {
  exec::TaskPool pool(1);
  fleet::FleetController::Config cfg = controller_config(&pool);
  cfg.ingest_capacity = 2;
  fleet::FleetController ctl(cfg);
  std::vector<ApScan> s0 = {ap(0)};
  for (int k = 1; k <= 3; ++k) {
    const bool ok = ctl.offer_epoch(fleet::ScanEpoch{time::minutes(k), s0});
    EXPECT_EQ(ok, k <= 2);
  }
  fleet::DeltaEpoch d;
  d.base_taken_at = time::minutes(2);
  d.taken_at = time::minutes(3);
  EXPECT_FALSE(ctl.offer_delta(std::move(d)));  // queue still full
  EXPECT_EQ(ctl.stats().epochs_dropped, 0u);    // synced at tick, not before
  ctl.tick(time::minutes(3));
  EXPECT_EQ(ctl.stats().epochs_dropped, 2u);
  EXPECT_EQ(ctl.stats().epochs_adopted, 1u);
  EXPECT_EQ(ctl.stats().epochs_superseded, 1u);
}

TEST(FleetDeltaTest, ReplanOnDeltaFiresOutOfCadence) {
  exec::TaskPool pool(1);
  fleet::FleetController::Config cfg = controller_config(&pool);
  cfg.replan_on_delta = true;
  cfg.cadence.fast = time::hours(1);  // nothing comes due on its own
  cfg.cadence.medium = time::hours(3);
  cfg.cadence.slow = time::hours(24);
  fleet::FleetController ctl(cfg);
  std::vector<ApScan> s0 = {ap(0, {{1, -60.0}}), ap(1, {{0, -60.0}}),
                            ap(10, {{11, -62.0}}), ap(11, {{10, -62.0}})};
  ctl.offer_epoch(fleet::ScanEpoch{time::minutes(1), s0});
  ctl.tick(time::minutes(1));
  const std::uint64_t first_pass = ctl.stats().jobs_run;
  EXPECT_EQ(first_pass, 2u);

  std::vector<ApScan> s1 = s0;
  s1[0].external_util[36] = 0.5;
  ctl.offer_delta(
      fleet::diff_epochs(s0, s1, time::minutes(1), time::minutes(2)));
  ctl.tick(time::minutes(2));
  // Only the touched campus replanned, out of band, minutes after the
  // first pass — the untouched campus stayed on cadence.
  EXPECT_EQ(ctl.stats().jobs_run, first_pass + 1);
  EXPECT_EQ(ctl.stats().replans_run, 1u);
}

// ---------------------------------------------------------------------------
// ScanStatsCache across delta epochs

TEST(FleetDeltaCacheTest, UnchangedCampusesHitAcrossDeltaEpochs) {
  exec::TaskPool pool(1);
  fleet::FleetController::Config cfg = controller_config(&pool);
  cfg.cadence.fast = time::minutes(1);  // every campus fires every tick
  fleet::FleetController ctl(cfg);
  std::vector<ApScan> s0 = {ap(0, {{1, -60.0}}), ap(1, {{0, -60.0}}),
                            ap(10, {{11, -62.0}}), ap(11, {{10, -62.0}})};
  ctl.offer_epoch(fleet::ScanEpoch{time::minutes(1), s0});
  ctl.tick(time::minutes(1));
  EXPECT_EQ(ctl.stats().cache_hits, 0u);
  EXPECT_EQ(ctl.stats().cache_misses, 4u);  // every row computed once

  // An empty delta: the whole fleet refires on cadence and every AP's
  // aggregate row is served from its campus cache.
  fleet::DeltaEpoch none;
  none.base_taken_at = time::minutes(1);
  none.taken_at = time::minutes(2);
  ctl.offer_delta(std::move(none));
  ctl.tick(time::minutes(2));
  EXPECT_EQ(ctl.stats().deltas_adopted, 1u);
  EXPECT_EQ(ctl.stats().cache_hits, 4u);
  EXPECT_EQ(ctl.stats().cache_misses, 4u);

  // Change one AP's spectrum: exactly one fresh row, everyone else hits.
  std::vector<ApScan> s1 = s0;
  s1[2].external_util[36] = 0.42;
  ctl.offer_delta(
      fleet::diff_epochs(s0, s1, time::minutes(2), time::minutes(3)));
  ctl.tick(time::minutes(3));
  EXPECT_EQ(ctl.stats().cache_hits, 4u + 3u);
  EXPECT_EQ(ctl.stats().cache_misses, 4u + 1u);
}

TEST(FleetDeltaCacheTest, RemovedCampusReleasesItsCacheEntries) {
  exec::TaskPool pool(1);
  fleet::FleetController::Config cfg = controller_config(&pool);
  cfg.cadence.fast = time::minutes(1);
  fleet::FleetController ctl(cfg);
  std::vector<ApScan> s0 = {ap(0, {{1, -60.0}}), ap(1, {{0, -60.0}}),
                            ap(10, {{11, -62.0}}), ap(11, {{10, -62.0}})};
  ctl.offer_epoch(fleet::ScanEpoch{time::minutes(1), s0});
  ctl.tick(time::minutes(1));
  const std::uint64_t misses_before = ctl.stats().cache_misses;
  EXPECT_EQ(misses_before, 4u);

  // Remove campus {10, 11} entirely: its CampusState — and the stats cache
  // rows inside it — are destroyed, which the rollup makes visible.
  std::vector<ApScan> s1 = {s0[0], s0[1]};
  ctl.offer_delta(
      fleet::diff_epochs(s0, s1, time::minutes(1), time::minutes(2)));
  ctl.tick(time::minutes(2));
  EXPECT_EQ(ctl.campus_count(), 1u);
  EXPECT_EQ(ctl.campus_scans(10), nullptr);
  // The rollup now sees only the surviving campus's cache: its 2 original
  // misses plus 2 fresh hits — the removed campus's counters are gone.
  EXPECT_EQ(ctl.stats().cache_misses, 2u);
  EXPECT_EQ(ctl.stats().cache_hits, 2u);
}

TEST(FleetDeltaCacheTest, EvictionIsBoundedAndDeterministic) {
  // Three distinct-content rows through a capacity-2 cache, twice: the
  // cache never exceeds its bound, evicts the same rows both times, and a
  // re-probe of evicted content misses (recomputes) rather than serving
  // stale bytes.
  const auto run_once = [] {
    flowsim::ScanStatsCache cache(2);
    std::vector<ApScan> scans = {ap(0, {}, 0.1), ap(1, {}, 0.2),
                                 ap(2, {}, 0.3)};
    flowsim::ScanIndex first(scans, kFloor, nullptr, &cache);
    flowsim::ScanIndex second(scans, kFloor, nullptr, &cache);
    EXPECT_LE(cache.size(), 2u);
    return cache.stats();
  };
  const flowsim::ScanStatsCache::Stats a = run_once();
  const flowsim::ScanStatsCache::Stats b = run_once();
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.misses, 3u + 1u);  // all three fresh, then the evicted one
  EXPECT_GE(a.evictions, 1u);
  // Distinct content must hash distinctly (the reuse keys are honest).
  EXPECT_NE(flowsim::ScanStatsCache::content_hash(ap(0, {}, 0.1)),
            flowsim::ScanStatsCache::content_hash(ap(0, {}, 0.2)));
}

// ---------------------------------------------------------------------------
// Golden equivalence through the whole scenario harness

TEST(FleetDeltaGoldenTest, DeltaReplayMatchesFullReplayAtEveryWorkerCount) {
  scenario::FleetScenarioConfig base;
  base.population.campuses = 12;
  base.population.aps_min = 4;
  base.population.aps_max = 10;
  base.population.seed = 42;
  base.controller.seed = 7;
  base.polls = 4;
  base.churn_fraction = 0.3;
  base.member_churn = 0.08;

  std::vector<scenario::FleetScenarioResult> full;
  std::vector<scenario::FleetScenarioResult> delta;
  for (const int workers : {1, 2, 4, 8}) {
    exec::TaskPool pool(workers);
    scenario::FleetScenarioConfig cfg = base;
    cfg.controller.pool = &pool;
    cfg.use_deltas = false;
    full.push_back(scenario::run_fleet_scenario(cfg));
    cfg.use_deltas = true;
    delta.push_back(scenario::run_fleet_scenario(cfg));
  }
  for (std::size_t i = 0; i < full.size(); ++i) {
    // Byte-identical plan streams: full vs delta replay, at every worker
    // count, including the member-churned trajectory.
    EXPECT_EQ(full[i].digest, full[0].digest);
    EXPECT_EQ(delta[i].digest, full[0].digest);
    EXPECT_EQ(delta[i].final_plan, full[0].final_plan);
    EXPECT_EQ(delta[i].fleet_aps, full[i].fleet_aps);
    EXPECT_EQ(delta[i].campuses, full[i].campuses);
    EXPECT_EQ(delta[i].telemetry_rows, full[i].telemetry_rows);
    EXPECT_EQ(delta[i].stats.deltas_adopted,
              static_cast<std::uint64_t>(base.polls - 1));
    EXPECT_EQ(delta[i].stats.deltas_rejected, 0u);
    // The O(churn) claim, structurally: the delta path partitioned far
    // fewer scans than the full path's poll-by-poll re-partition.
    EXPECT_LT(delta[i].stats.aps_repartitioned,
              full[i].stats.aps_repartitioned);
  }
}
