// Unit tests for the flow-level network model.

#include <gtest/gtest.h>

#include "core/turboca/service.hpp"
#include "flowsim/network.hpp"
#include "workload/topology.hpp"

namespace w11 {
namespace {

using flowsim::Network;

constexpr Channel ch36{Band::G5, 36, ChannelWidth::MHz20};
constexpr Channel ch149{Band::G5, 149, ChannelWidth::MHz20};
constexpr Channel ch42_80{Band::G5, 42, ChannelWidth::MHz80};
constexpr Channel ch52{Band::G5, 52, ChannelWidth::MHz20};  // DFS

Network::Config quiet_config() {
  Network::Config cfg;
  cfg.prop.shadowing_sigma = 0.0;
  return cfg;
}

ClientCapability ac2ss() {
  return ClientCapability{WifiStandard::k80211ac, true, ChannelWidth::MHz80, 2,
                          true, true};
}

TEST(Flowsim, LoneApMeetsModestDemand) {
  Network net(quiet_config());
  const ApId ap = net.add_ap({0, 0}, ChannelWidth::MHz80, ch42_80);
  for (int i = 0; i < 5; ++i)
    net.add_client(ap, {5.0 + i, 0}, ac2ss(), 10.0);
  const auto ev = net.evaluate();
  EXPECT_NEAR(ev.total_offered_mbps, 50.0, 1e-6);
  EXPECT_NEAR(ev.total_throughput_mbps, 50.0, 1.0);
  EXPECT_LT(ev.per_ap[0].utilization, 0.5);
  EXPECT_GT(ev.per_ap[0].mean_phy_rate_mbps, 400.0);
}

TEST(Flowsim, CochannelNeighborsShareAirtime) {
  Network net(quiet_config());
  const ApId a = net.add_ap({0, 0}, ChannelWidth::MHz20, ch36);
  const ApId b = net.add_ap({20, 0}, ChannelWidth::MHz20, ch36);
  // Both demand more than half the medium.
  for (int i = 0; i < 4; ++i) {
    net.add_client(a, {2.0 + i, 0}, ac2ss(), 30.0);
    net.add_client(b, {22.0 + i, 0}, ac2ss(), 30.0);
  }
  const auto ev = net.evaluate();
  // Each is throttled below demand...
  EXPECT_LT(ev.of(a).throughput_mbps, ev.of(a).offered_mbps);
  // ...roughly fairly (§5.6.3).
  EXPECT_NEAR(ev.of(a).airtime_share, ev.of(b).airtime_share, 0.15);
  EXPECT_EQ(ev.of(a).cochannel_interferers, 1);
  // Separating the channels releases the pressure.
  net.apply_plan({{b, ch149}});
  const auto ev2 = net.evaluate();
  EXPECT_GT(ev2.total_throughput_mbps, ev.total_throughput_mbps * 1.2);
  EXPECT_EQ(ev2.of(a).cochannel_interferers, 0);
}

TEST(Flowsim, ExternalInterfererStealsAirtime) {
  Network net(quiet_config());
  const ApId a = net.add_ap({0, 0}, ChannelWidth::MHz20, ch36);
  for (int i = 0; i < 4; ++i) net.add_client(a, {3.0 + i, 0}, ac2ss(), 40.0);
  const double clean = net.evaluate().of(a).throughput_mbps;
  flowsim::ExternalInterferer intf;
  intf.pos = {5, 5};
  intf.channel = ch36;
  intf.duty_cycle = 0.6;
  net.add_interferer(intf);
  const double dirty = net.evaluate().of(a).throughput_mbps;
  EXPECT_LT(dirty, clean);
}

TEST(Flowsim, UplinkCapScalesThroughputDown) {
  auto cfg = quiet_config();
  cfg.uplink_capacity = RateMbps{30.0};
  Network net(cfg);
  const ApId a = net.add_ap({0, 0}, ChannelWidth::MHz80, ch42_80);
  for (int i = 0; i < 5; ++i) net.add_client(a, {4.0 + i, 0}, ac2ss(), 20.0);
  const auto ev = net.evaluate();
  EXPECT_NEAR(ev.total_throughput_mbps, 30.0, 1e-6);
}

TEST(Flowsim, UtilizationBounded) {
  Network net(quiet_config());
  const ApId a = net.add_ap({0, 0}, ChannelWidth::MHz20, ch36);
  const ApId b = net.add_ap({10, 0}, ChannelWidth::MHz20, ch36);
  for (int i = 0; i < 10; ++i) {
    net.add_client(a, {1.0 + i, 0}, ac2ss(), 100.0);
    net.add_client(b, {11.0 + i, 0}, ac2ss(), 100.0);
  }
  for (const auto& m : net.evaluate().per_ap) {
    EXPECT_GE(m.utilization, 0.0);
    EXPECT_LE(m.utilization, 1.0);
    EXPECT_GE(m.airtime_share, 0.0);
    EXPECT_LE(m.airtime_share, 1.0);
  }
}

TEST(Flowsim, EfficiencyWithinUnitInterval) {
  Network net(quiet_config());
  const ApId a = net.add_ap({0, 0}, ChannelWidth::MHz80, ch42_80);
  net.add_client(a, {3, 0}, ac2ss(), 5.0);
  net.add_client(a, {60, 0}, ac2ss(), 5.0);
  const auto ev = net.evaluate();
  for (double e : ev.of(a).client_efficiency) {
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
  }
  // The distant client is less efficient.
  EXPECT_LT(ev.of(a).client_efficiency[1], ev.of(a).client_efficiency[0]);
}

TEST(Flowsim, EfficiencyIsWidthNeutralButInterferenceSensitive) {
  // The §4.6.2 metric normalizes by the association's max rate at the
  // *operating* width, so re-planning to a narrow channel does not by
  // itself tank efficiency — but external interference on the channel does
  // (lower SINR -> lower MCS at the same width).
  Network net(quiet_config());
  const ApId a = net.add_ap({0, 0}, ChannelWidth::MHz80, ch42_80);
  net.add_client(a, {20, 0}, ac2ss(), 5.0);
  const double wide = net.evaluate().of(a).mean_bitrate_efficiency;
  net.apply_plan({{a, ch36}});
  const double narrow = net.evaluate().of(a).mean_bitrate_efficiency;
  // Same ballpark — no 4x capability cliff. (Narrow runs a little closer
  // to its ceiling: lower noise floor at the same distance.)
  EXPECT_NEAR(wide, narrow, 0.45);

  // Park a strong interferer out of CS range but near the client's channel:
  // efficiency drops at unchanged width.
  flowsim::ExternalInterferer intf;
  intf.pos = {120, 0};
  intf.channel = ch36;
  intf.duty_cycle = 0.9;
  net.add_interferer(intf);
  const double interfered = net.evaluate().of(a).mean_bitrate_efficiency;
  EXPECT_LT(interfered, narrow);
}

TEST(Flowsim, ApplyPlanCountsSwitches) {
  Network net(quiet_config());
  const ApId a = net.add_ap({0, 0}, ChannelWidth::MHz80, ch36);
  const ApId b = net.add_ap({50, 0}, ChannelWidth::MHz80, ch36);
  EXPECT_EQ(net.apply_plan({{a, ch149}, {b, ch36}}), 1);  // b unchanged
  EXPECT_EQ(net.total_switches(), 1);
  EXPECT_EQ(net.current_plan().at(a), ch149);
}

TEST(Flowsim, RadarEventVacatesDfsChannel) {
  Network net(quiet_config());
  const ApId a = net.add_ap({0, 0}, ChannelWidth::MHz80, ch36);
  net.apply_plan({{a, ch52}});
  EXPECT_TRUE(net.aps()[0].channel.is_dfs());
  net.radar_event(a);
  EXPECT_FALSE(net.aps()[0].channel.is_dfs());
  // Radar on a non-DFS channel is a no-op.
  const Channel before = net.aps()[0].channel;
  net.radar_event(a);
  EXPECT_EQ(net.aps()[0].channel, before);
}

TEST(Flowsim, ScanReportsNeighborsAndLoads) {
  Network net(quiet_config());
  const ApId a = net.add_ap({0, 0}, ChannelWidth::MHz80, ch36);
  const ApId b = net.add_ap({15, 0}, ChannelWidth::MHz80, ch149);
  const ApId far = net.add_ap({5000, 0}, ChannelWidth::MHz80, ch36);
  ClientCapability narrow = ac2ss();
  narrow.max_width = ChannelWidth::MHz40;
  net.add_client(a, {2, 0}, ac2ss(), 4.0);
  net.add_client(a, {3, 0}, narrow, 2.0);

  const auto scans = net.scan();
  ASSERT_EQ(scans.size(), 3u);
  const ApScan& sa = scans[0];
  EXPECT_EQ(sa.id, a);
  ASSERT_EQ(sa.neighbors.size(), 1u);  // only b is in range
  EXPECT_EQ(sa.neighbors[0].id, b);
  EXPECT_TRUE(sa.has_clients);
  EXPECT_GT(sa.load_by_width.at(ChannelWidth::MHz80), 0.0);
  EXPECT_GT(sa.load_by_width.at(ChannelWidth::MHz40), 0.0);
  EXPECT_FALSE(scans[2].has_clients);
  (void)far;
}

TEST(Flowsim, ScanSeesExternalUtilization) {
  Network net(quiet_config());
  net.add_ap({0, 0}, ChannelWidth::MHz80, ch36);
  flowsim::ExternalInterferer intf;
  intf.pos = {3, 0};
  intf.channel = ch149;
  intf.duty_cycle = 0.4;
  net.add_interferer(intf);
  const auto scans = net.scan();
  ASSERT_EQ(scans.size(), 1u);
  EXPECT_NEAR(scans[0].external_util.at(149), 0.4, 1e-9);
  EXPECT_LT(scans[0].quality.at(149), 1.0);
  EXPECT_FALSE(scans[0].external_util.contains(36));
}

TEST(Flowsim, IdleClientsDontCountForDfsRule) {
  Network net(quiet_config());
  const ApId a = net.add_ap({0, 0}, ChannelWidth::MHz80, ch36);
  net.add_client(a, {2, 0}, ac2ss(), 3.0);
  EXPECT_TRUE(net.scan()[0].has_clients);
  net.set_client_load(a, 0.0);  // overnight
  EXPECT_FALSE(net.scan()[0].has_clients);
}

TEST(Flowsim, LatencySamplesGrowWithContention) {
  auto median_latency = [](int n_aps) {
    Network net(Network::Config{});
    for (int i = 0; i < n_aps; ++i) {
      const ApId a = net.add_ap({static_cast<double>(5 * i), 0},
                                ChannelWidth::MHz20, ch36);
      for (int c = 0; c < 5; ++c)
        net.add_client(a, {5.0 * i + 1 + c, 0}, ac2ss(), 8.0);
    }
    Network::Config cfg;
    auto ev = net.evaluate();
    auto s = net.sample_tcp_latency(ev, 200, 0.0);
    return s.median();
  };
  EXPECT_GT(median_latency(8), median_latency(1) * 1.5);
}

TEST(Flowsim, SlowClientTailInjection) {
  Network net(quiet_config());
  const ApId a = net.add_ap({0, 0}, ChannelWidth::MHz80, ch42_80);
  net.add_client(a, {3, 0}, ac2ss(), 5.0);
  auto ev = net.evaluate();
  auto s = net.sample_tcp_latency(ev, 5000, 0.05);
  // ~5 % of samples land in the >=400 ms unresponsive-client tail.
  EXPECT_NEAR(1.0 - s.cdf_at(399.9), 0.05, 0.02);
}

TEST(Flowsim, RssiSamplesLookSane) {
  Network net(quiet_config());
  const ApId a = net.add_ap({0, 0}, ChannelWidth::MHz80, ch42_80);
  for (int i = 0; i < 20; ++i)
    net.add_client(a, {2.0 + i * 2, 0}, ac2ss(), 1.0);
  const auto rssi = net.sample_client_rssi();
  EXPECT_EQ(rssi.count(), 20u);
  EXPECT_LT(rssi.max(), -20.0);
  EXPECT_GT(rssi.min(), -100.0);
}

TEST(Flowsim, ScaleOfferedLoadMultiplies) {
  Network net(quiet_config());
  const ApId a = net.add_ap({0, 0}, ChannelWidth::MHz80, ch42_80);
  net.add_client(a, {3, 0}, ac2ss(), 10.0);
  net.scale_offered_load(0.5);
  EXPECT_NEAR(net.evaluate().total_offered_mbps, 5.0, 1e-9);
}

TEST(Flowsim, EvaluationIsDeterministic) {
  auto run = [] {
    Network net(quiet_config());
    const ApId a = net.add_ap({0, 0}, ChannelWidth::MHz80, ch42_80);
    for (int i = 0; i < 6; ++i)
      net.add_client(a, {3.0 + i, 0}, ac2ss(), 7.0);
    return net.evaluate().total_throughput_mbps;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Flowsim, HiddenInterferenceDegradesRate) {
  // A co-channel AP out of CS range doesn't serialize, it interferes: the
  // victim's clients see lower SINR and thus lower PHY rates.
  auto mean_rate = [](double dist) {
    Network net(quiet_config());
    const ApId a = net.add_ap({0, 0}, ChannelWidth::MHz20, ch36);
    // Clients at 25 m: SNR in the MCS-sensitive region, not saturated.
    for (int c = 0; c < 3; ++c) net.add_client(a, {25.0 + c, 0}, ac2ss(), 20.0);
    const ApId b = net.add_ap({dist, 0}, ChannelWidth::MHz20, ch36);
    for (int c = 0; c < 3; ++c)
      net.add_client(b, {dist + 2.0 + c, 0}, ac2ss(), 20.0);
    return net.evaluate().of(a).mean_phy_rate_mbps;
  };
  // 80 m: just outside CS range (~71 m at the default model) but radiating
  // strongly, vs 10 km: negligible.
  EXPECT_LT(mean_rate(80.0), mean_rate(10'000.0));
}

}  // namespace
}  // namespace w11

namespace w11 {
namespace {

TEST(Flowsim, ScanNoisePerturbsUtilizationEstimates) {
  flowsim::Network::Config cfg;
  cfg.prop.shadowing_sigma = 0.0;
  cfg.scan_noise_sigma = 0.1;
  flowsim::Network net(cfg);
  const ApId a = net.add_ap({0, 0}, ChannelWidth::MHz80,
                            {Band::G5, 36, ChannelWidth::MHz20});
  flowsim::ExternalInterferer intf;
  intf.pos = {3, 0};
  intf.channel = {Band::G5, 149, ChannelWidth::MHz20};
  intf.duty_cycle = 0.4;
  net.add_interferer(intf);
  (void)a;

  // Two consecutive scans disagree (independent samples) but stay bounded.
  const double u1 = net.scan()[0].external_util.at(149);
  const double u2 = net.scan()[0].external_util.at(149);
  EXPECT_NE(u1, u2);
  for (double u : {u1, u2}) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
    EXPECT_NEAR(u, 0.4, 0.4);  // centred on the true duty
  }
}

TEST(Flowsim, TurboCaRobustToModerateScanNoise) {
  // Plans built from noisy scans must still clearly beat the unplanned
  // network — the algorithm degrades gracefully, it does not flip.
  auto throughput_after_planning = [](double noise) {
    workload::CampusConfig cc;
    cc.n_aps = 30;
    cc.seed = 91;
    auto net = workload::make_campus(cc);
    // (make_campus leaves everyone on ch36/20MHz)
    const double before = net->evaluate().total_throughput_mbps;
    flowsim::Network::Config patched = net->config();
    (void)patched;  // scan noise is set at construction; emulate by
                    // re-planning through noisy hooks below
    turboca::NetworkHooks h;
    h.scan = [&net, noise] {
      auto scans = net->scan();
      Rng jitter(17);
      if (noise > 0.0) {
        for (auto& s : scans)
          for (auto& [comp, u] : s.external_util)
            u = std::clamp(u + jitter.normal(0.0, noise), 0.0, 1.0);
      }
      return scans;
    };
    h.current_plan = [&net] { return net->current_plan(); };
    h.apply_plan = [&net](const ChannelPlan& p) { net->apply_plan(p); };
    turboca::TurboCaService svc({}, {}, h, Rng(5));
    svc.run_now({1, 0});
    const double after = net->evaluate().total_throughput_mbps;
    return after / before;
  };
  EXPECT_GT(throughput_after_planning(0.0), 1.5);
  EXPECT_GT(throughput_after_planning(0.15), 1.5);
}

}  // namespace
}  // namespace w11
