// Fleet health engine (DESIGN.md §17): SLI sliding windows, multi-window
// burn-rate SLO evaluation, and the anomaly flight recorder — up to the
// headline determinism property: a chaos-soak auto-revert produces a
// postmortem bundle that is byte-identical at 1/2/4/8 planner workers and
// correlates the rollout audit, the planner decision audit, and the trace
// stream around the trigger.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "exec/task_pool.hpp"
#include "fault/fault_plan.hpp"
#include "obs/gate.hpp"
#include "scenario/rollout_harness.hpp"

#if W11_OBS
#include "obs/health/flight_recorder.hpp"
#include "obs/health/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#endif

namespace w11 {
namespace {

#if W11_OBS

using obs::FlightRecorder;
using obs::HealthEngine;
using obs::SlidingWindow;
using obs::SloSpec;

std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++n;
  return n;
}

// ------------------------------------------------------ sliding windows --

TEST(HealthSlidingWindow, AggregatesPerWindowAndRollsQuietZeros) {
  SlidingWindow sw(time::minutes(1), 4);
  sw.observe(time::seconds(10), 2.0);
  sw.observe(time::seconds(20), 6.0);
  EXPECT_EQ(sw.window(0).count, 2u);
  EXPECT_EQ(sw.window(0).sum, 8.0);
  EXPECT_EQ(sw.window(0).min, 2.0);
  EXPECT_EQ(sw.window(0).max, 6.0);
  sw.observe(time::seconds(70), 1.0);  // next window
  EXPECT_EQ(sw.window(0).count, 1u);
  EXPECT_EQ(sw.window(1).count, 2u);
  // Advancing far past the ring leaves every window a defined zero — a
  // quiet minute is "no bad samples", not "unknown".
  sw.advance(time::minutes(30));
  for (std::size_t k = 0; k < 4; ++k) EXPECT_EQ(sw.window(k).count, 0u);
  EXPECT_EQ(sw.samples(), 3u);
  EXPECT_EQ(sw.dropped_late(), 0u);
}

TEST(HealthSlidingWindow, MergeIsOrderFree) {
  SlidingWindow sw(time::minutes(1), 8);
  const double vals[] = {0.5, 3.0, 17.0, 1.0, 250.0, 9.0};
  for (int i = 0; i < 6; ++i)
    sw.observe(time::minutes(i) + time::seconds(5), vals[i]);
  SlidingWindow::Agg fwd;
  for (std::size_t k = 0; k < 8; ++k) fwd.merge(sw.window(k));
  SlidingWindow::Agg rev;
  for (std::size_t k = 8; k-- > 0;) rev.merge(sw.window(k));
  EXPECT_EQ(fwd.count, rev.count);
  EXPECT_EQ(fwd.sum, rev.sum);
  EXPECT_EQ(fwd.min, rev.min);
  EXPECT_EQ(fwd.max, rev.max);
  EXPECT_EQ(fwd.buckets, rev.buckets);
  EXPECT_EQ(fwd.count, 6u);
}

TEST(HealthSlidingWindow, LateSamplesBeyondTheRingAreDroppedAndCounted) {
  SlidingWindow sw(time::minutes(1), 4);
  sw.advance(time::minutes(10));
  sw.observe(time::minutes(1), 5.0);  // nine windows late, ring holds four
  EXPECT_EQ(sw.dropped_late(), 1u);
  EXPECT_EQ(sw.samples(), 0u);
  sw.observe(time::minutes(10), 5.0);  // current window still lands
  EXPECT_EQ(sw.samples(), 1u);
}

TEST(HealthSlidingWindow, FractionBadIsExactOnBucketBounds) {
  SlidingWindow sw(time::minutes(1), 2, {1.0, 2.0, 4.0});
  sw.observe(time::seconds(1), 1.0);
  sw.observe(time::seconds(2), 2.0);
  sw.observe(time::seconds(3), 4.0);
  const SlidingWindow::Agg m = sw.merged(2);
  // Strictly above 2.0: only the 4.0 sample.
  EXPECT_NEAR(sw.fraction_bad(m, 2.0, /*bad_above=*/true), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(sw.fraction_bad(m, 2.0, /*bad_above=*/false), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(sw.fraction_bad(SlidingWindow::Agg{}, 2.0, true), 0.0);
}

TEST(HealthSlidingWindow, QuantileStaysInsideObservedRange) {
  SlidingWindow sw(time::minutes(1), 4);
  for (int i = 1; i <= 100; ++i)
    sw.observe(time::seconds(i), static_cast<double>(i));
  const SlidingWindow::Agg m = sw.merged(4);
  const double p50 = sw.quantile(m, 0.5);
  const double p95 = sw.quantile(m, 0.95);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 100.0);
  EXPECT_GE(p95, p50);
  EXPECT_LE(p95, 100.0);
}

// ------------------------------------------------------- health engine --

HealthEngine::Config one_slo_config() {
  HealthEngine::Config hc;
  hc.series.width = time::minutes(1);
  SloSpec s;
  s.name = "reverts";
  s.sli = "reverts";
  s.threshold = 0.0;
  s.objective = 0.99;
  s.fast_windows = 5;
  s.slow_windows = 30;
  s.fast_burn = 2.0;
  s.slow_burn = 1.0;
  hc.slos.push_back(s);
  return hc;
}

TEST(HealthEngine, BreachesOnFastAndSlowBurnThenRecovers) {
  HealthEngine eng(one_slo_config());
  Time t = time::minutes(1);
  for (int i = 0; i < 10; ++i, t += time::minutes(1)) {
    eng.observe("reverts", t, 0.0);
    EXPECT_TRUE(eng.poll(t).empty());
  }
  // One bad poll: the fast window burns its 0.01 budget at >= 20x — breach.
  eng.observe("reverts", t, 1.0);
  const auto ev = eng.poll(t);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_TRUE(ev[0].breach);
  EXPECT_EQ(ev[0].name, "reverts");
  EXPECT_GE(ev[0].burn_fast, 2.0);
  EXPECT_GE(ev[0].burn_slow, 1.0);
  t += time::minutes(1);
  // Quiet polls: breached until the bad window rolls out of the fast merge,
  // then exactly one recovery event.
  int recoveries = 0;
  for (int i = 0; i < 8; ++i, t += time::minutes(1)) {
    eng.observe("reverts", t, 0.0);
    for (const auto& e : eng.poll(t)) {
      EXPECT_FALSE(e.breach);
      ++recoveries;
    }
  }
  EXPECT_EQ(recoveries, 1);
  EXPECT_EQ(eng.breaches(), 1u);
  EXPECT_EQ(eng.recoveries(), 1u);
  EXPECT_FALSE(eng.slo_state(0).breached);
}

TEST(HealthEngine, CounterDeltasClampNegativeOnReset) {
  HealthEngine eng(one_slo_config());
  eng.observe_counter("c", time::seconds(10), 5.0);
  eng.observe_counter("c", time::seconds(20), 3.0);  // counter reset
  eng.observe_counter("c", time::seconds(30), 4.0);
  const SlidingWindow* sw = eng.find_series("c");
  ASSERT_NE(sw, nullptr);
  EXPECT_EQ(sw->samples(), 3u);
  // 5 (from zero) + 0 (clamped) + 1.
  EXPECT_EQ(sw->merged(1).sum, 6.0);
}

TEST(HealthEngine, UnboundSloPollsAreCountedNotFatal) {
  HealthEngine::Config hc = one_slo_config();
  hc.slos[0].sli = "never-observed";
  HealthEngine eng(hc);
  EXPECT_TRUE(eng.poll(time::minutes(1)).empty());
  EXPECT_TRUE(eng.poll(time::minutes(2)).empty());
  EXPECT_EQ(eng.unbound_slo_polls(), 2u);
  EXPECT_EQ(eng.polls(), 2u);
}

TEST(HealthEngine, EventLogBytesAreReproducible) {
  auto run = [] {
    HealthEngine eng(one_slo_config());
    Time t = time::minutes(1);
    for (int i = 0; i < 12; ++i, t += time::minutes(1)) {
      eng.observe("reverts", t, i == 6 ? 1.0 : 0.0);
      eng.poll(t);
    }
    return eng.events_jsonl();
  };
  const std::string a = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, run());
  EXPECT_NE(a.find("\"event\":\"breach\""), std::string::npos);
}

// ------------------------------------------------------ flight recorder --

FlightRecorder::Config small_ring(std::size_t capacity) {
  FlightRecorder::Config fc;
  fc.ring_capacity = capacity;
  fc.window = time::hours(1);
  fc.max_bundles = 2;
  return fc;
}

TEST(FlightRecorder, RingOverflowEvictsOldestWithExactAccounting) {
  FlightRecorder fr(small_ring(4));
  for (int i = 0; i < 10; ++i)
    fr.note(time::seconds(i), "n", static_cast<double>(i));
  EXPECT_EQ(fr.ring_size(), 4u);
  EXPECT_EQ(fr.entries_dropped(), 6u);
  const std::string& b =
      fr.trigger(obs::Trigger::kManual, time::seconds(9), "t");
  EXPECT_EQ(count_of(b, "\"record\":\"note\""), 4u);
  EXPECT_NE(b.find("\"ring_dropped\":6"), std::string::npos);
  EXPECT_NE(b.find("\"value\":6"), std::string::npos);  // oldest survivor
  EXPECT_EQ(b.find("\"value\":5"), std::string::npos);  // newest evictee
}

TEST(FlightRecorder, ZeroCapacityRingDropsEverything) {
  FlightRecorder fr(small_ring(0));
  fr.note(time::seconds(1), "n");
  fr.note(time::seconds(2), "n");
  EXPECT_EQ(fr.ring_size(), 0u);
  EXPECT_EQ(fr.entries_dropped(), 2u);
}

TEST(FlightRecorder, BundleWindowCutsEntriesBeforeLookback) {
  FlightRecorder::Config fc;
  fc.ring_capacity = 16;
  fc.window = time::minutes(1);
  FlightRecorder fr(fc);
  fr.note(time::seconds(10), "old");
  fr.note(time::seconds(100), "fresh");
  const std::string& b =
      fr.trigger(obs::Trigger::kManual, time::seconds(110), "cut");
  EXPECT_EQ(b.find("\"tag\":\"old\""), std::string::npos);
  EXPECT_NE(b.find("\"tag\":\"fresh\""), std::string::npos);
  EXPECT_NE(b.find("\"detail\":\"cut\""), std::string::npos);
}

TEST(FlightRecorder, CatalogFixesSnapshotShapeWithZeroFill) {
  obs::MetricsRegistry reg;
  reg.set_enabled(true);
  obs::Counter hit = reg.counter("b.hit");
  hit.add(2);
  FlightRecorder fr(small_ring(8));
  // "a.absent" is never registered: the catalog still emits it, at zero, so
  // bundle bytes never depend on which code paths happened to run first.
  fr.attach_metrics(&reg, {"a.absent", "b.hit"});
  fr.capture(time::seconds(5));
  const std::string& b =
      fr.trigger(obs::Trigger::kManual, time::seconds(6), "m");
  EXPECT_NE(b.find("\"a.absent\":0"), std::string::npos);
  EXPECT_NE(b.find("\"b.hit\":2"), std::string::npos);
}

TEST(FlightRecorder, MaxBundlesEvictsOldestPostmortem) {
  FlightRecorder fr(small_ring(8));  // max_bundles = 2
  fr.trigger(obs::Trigger::kManual, time::seconds(1), "first");
  fr.trigger(obs::Trigger::kManual, time::seconds(2), "second");
  fr.trigger(obs::Trigger::kManual, time::seconds(3), "third");
  EXPECT_EQ(fr.bundles().size(), 2u);
  EXPECT_EQ(fr.bundles_dropped(), 1u);
  EXPECT_EQ(fr.triggers_fired(), 3u);
  EXPECT_NE(fr.bundles()[0].find("\"detail\":\"second\""), std::string::npos);
  EXPECT_NE(fr.bundles()[1].find("\"detail\":\"third\""), std::string::npos);
}

// -------------------------------------------- chaos-soak scenario rig --

// The chaos shape of tests/test_rollout.cpp's soak, plus a fleet-wide
// control partition that outlasts the watchdog so the first rollout is
// guaranteed to revert — the anomaly the flight recorder exists for.
scenario::RolloutScenarioConfig chaos_health_config(exec::TaskPool* pool) {
  scenario::RolloutScenarioConfig cfg;
  cfg.n_aps = 10;
  cfg.net_seed = 1;
  cfg.ctrl_seed = 41 * 1000 + 1;
  cfg.horizon = time::hours(2);
  cfg.poll = time::minutes(1);
  cfg.channel.loss = 0.10;
  cfg.backoff.ack_timeout = time::millis(500);
  cfg.backoff.initial = time::millis(500);
  cfg.backoff.cap = time::seconds(10);
  cfg.rollout.canary = 2;
  cfg.rollout.validate_window = time::minutes(2);
  cfg.rollout.watchdog = time::minutes(10);
  fault::FaultPlan::RandomConfig rc;
  rc.horizon = cfg.horizon;
  rc.n_aps = cfg.n_aps;
  rc.n_links = cfg.n_aps;
  rc.n_events = 10;
  rc.max_outage = time::minutes(3);
  cfg.faults = fault::FaultPlan::random(41, rc);
  cfg.faults.radar(time::minutes(16), 1);
  for (int ap = 0; ap < cfg.n_aps; ++ap)
    cfg.faults.link_outage(time::minutes(15) + time::seconds(30), ap,
                           time::minutes(11));
  cfg.health = true;
  cfg.pool = pool;
  return cfg;
}

TEST(FlightRecorderScenario, ChaosRevertPostmortemIsByteIdenticalAcrossWorkers) {
  std::vector<std::string> base_postmortems;
  std::string base_events;
  for (const int workers : {1, 2, 4, 8}) {
    exec::TaskPool pool(workers);
    const auto r =
        scenario::run_rollout_scenario(chaos_health_config(&pool));
    SCOPED_TRACE(workers);
    EXPECT_TRUE(r.converged);
    EXPECT_GT(r.rollout.reverted, 0u);
    EXPECT_GT(r.health_breaches, 0u);
    EXPECT_GT(r.health_rows, 0u);
    ASSERT_FALSE(r.postmortems.empty());
    // Every bundle is self-contained: header, the three correlated
    // streams (flight ring metrics, trace records, audit sections), end.
    for (const std::string& b : r.postmortems) {
      EXPECT_NE(b.find("\"record\":\"postmortem\""), std::string::npos);
      EXPECT_NE(b.find("\"record\":\"metrics\""), std::string::npos);
      EXPECT_NE(b.find("\"record\":\"trace\""), std::string::npos);
      EXPECT_NE(b.find("\"name\":\"rollout_audit\""), std::string::npos);
      EXPECT_NE(b.find("\"name\":\"plan_audit\""), std::string::npos);
      EXPECT_NE(b.find("\"record\":\"end\""), std::string::npos);
    }
    // The revert that triggered the dump shows up in the correlated
    // rollout audit of at least one bundle.
    std::size_t reverts_in_bundles = 0;
    for (const std::string& b : r.postmortems)
      reverts_in_bundles += count_of(b, "\"event\":\"revert\"");
    EXPECT_GT(reverts_in_bundles, 0u);
    if (workers == 1) {
      base_postmortems = r.postmortems;
      base_events = r.health_events_jsonl;
      EXPECT_FALSE(base_events.empty());
    } else {
      EXPECT_EQ(r.postmortems, base_postmortems);
      EXPECT_EQ(r.health_events_jsonl, base_events);
    }
  }
}

TEST(HealthScenario, QuietRunPagesNothingAndDumpsNothing) {
  exec::TaskPool pool(2);
  scenario::RolloutScenarioConfig cfg;  // no faults at all
  cfg.n_aps = 8;
  cfg.horizon = time::hours(1);
  cfg.poll = time::minutes(1);
  cfg.health = true;
  cfg.pool = &pool;
  const auto r = scenario::run_rollout_scenario(cfg);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.health_breaches, 0u);
  EXPECT_EQ(r.health_rows, 0u);
  EXPECT_TRUE(r.postmortems.empty());
  EXPECT_TRUE(r.health_events_jsonl.empty());
  EXPECT_GE(r.rollout_health.committed, 1u);
  EXPECT_EQ(r.rollout_health.revert_rate, 0.0);
}

TEST(HealthScenario, PostmortemOnFaultDumpsOnInjectedRadar) {
  exec::TaskPool pool(2);
  scenario::RolloutScenarioConfig cfg;
  cfg.n_aps = 8;
  cfg.horizon = time::hours(1);
  cfg.poll = time::minutes(1);
  cfg.faults.radar(time::minutes(20), 3);
  cfg.health = true;
  cfg.postmortem_on_fault = true;
  cfg.pool = &pool;
  const auto r = scenario::run_rollout_scenario(cfg);
  ASSERT_FALSE(r.postmortems.empty());
  bool fault_bundle = false;
  for (const std::string& b : r.postmortems)
    fault_bundle = fault_bundle ||
                   b.find("\"trigger\":\"fault_injection\"") !=
                       std::string::npos;
  EXPECT_TRUE(fault_bundle);
  // The radar note fed the flight ring before the trigger read it.
  EXPECT_NE(r.postmortems.front().find("\"tag\":\"fault.radar\""),
            std::string::npos);
}

#else  // !W11_OBS

TEST(HealthScenario, DisabledBuildStillRunsTheHarness) {
  scenario::RolloutScenarioConfig cfg;
  cfg.n_aps = 6;
  cfg.horizon = time::minutes(30);
  cfg.health = true;  // must be an inert flag without W11_OBS
  const auto r = scenario::run_rollout_scenario(cfg);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.postmortems.empty());
}

#endif  // W11_OBS

}  // namespace
}  // namespace w11
