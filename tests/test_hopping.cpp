// Tests for the channel-hopping baseline (§4.2 category iii).

#include <gtest/gtest.h>

#include "core/turboca/hopping.hpp"
#include "workload/topology.hpp"

namespace w11 {
namespace {

turboca::NetworkHooks hooks_for(flowsim::Network& net) {
  turboca::NetworkHooks h;
  h.scan = [&net] { return net.scan(); };
  h.current_plan = [&net] { return net.current_plan(); };
  h.apply_plan = [&net](const ChannelPlan& p) { net.apply_plan(p); };
  return h;
}

std::unique_ptr<flowsim::Network> small_campus(std::uint64_t seed) {
  workload::CampusConfig cc;
  cc.n_aps = 12;
  cc.seed = seed;
  return workload::make_campus(cc);
}

TEST(Hopping, HopsEveryPeriodAndOnlyThen) {
  auto net = small_campus(3);
  turboca::HoppingCaService svc({}, hooks_for(*net), Rng(5));
  svc.advance_to(Time{0});
  EXPECT_EQ(svc.stats().hops_executed, 1);  // first call hops immediately
  svc.advance_to(time::minutes(10));
  EXPECT_EQ(svc.stats().hops_executed, 1);  // period not elapsed
  svc.advance_to(time::minutes(15));
  EXPECT_EQ(svc.stats().hops_executed, 2);
  svc.advance_to(time::minutes(29));
  EXPECT_EQ(svc.stats().hops_executed, 2);
  svc.advance_to(time::minutes(31));
  EXPECT_EQ(svc.stats().hops_executed, 3);
}

TEST(Hopping, SequencesAreDeterministicPerSeedAndCycle) {
  auto run = [](std::uint64_t seed) {
    auto net = small_campus(7);
    turboca::HoppingCaService::Config cfg;
    cfg.sequence_length = 3;
    turboca::HoppingCaService svc(cfg, hooks_for(*net), Rng(seed));
    std::vector<ChannelPlan> plans;
    for (int i = 0; i < 4; ++i) {
      svc.hop_now();
      plans.push_back(net->current_plan());
    }
    return plans;
  };
  const auto a = run(11);
  const auto b = run(11);
  EXPECT_EQ(a, b);  // deterministic
  // Sequence length 3: the 4th hop revisits the 1st hop's channels.
  EXPECT_EQ(a[0], a[3]);
  EXPECT_NE(a[0], a[1]);
}

TEST(Hopping, RespectsWidthAndDfsConstraints) {
  auto net = small_campus(9);
  turboca::HoppingCaService::Config cfg;
  cfg.width = ChannelWidth::MHz40;
  cfg.allow_dfs = false;
  turboca::HoppingCaService svc(cfg, hooks_for(*net), Rng(13));
  for (int i = 0; i < 5; ++i) {
    svc.hop_now();
    for (const auto& ap : net->aps()) {
      EXPECT_EQ(ap.channel.width, ChannelWidth::MHz40);
      EXPECT_FALSE(ap.channel.is_dfs());
    }
  }
}

TEST(Hopping, ChurnsFarMoreThanItHasTo) {
  // The §4.2 critique in miniature: every period nearly every AP switches.
  auto net = small_campus(15);
  turboca::HoppingCaService svc({}, hooks_for(*net), Rng(17));
  svc.hop_now();
  const int after_first = net->total_switches();
  svc.hop_now();
  svc.hop_now();
  const int per_hop = (net->total_switches() - after_first) / 2;
  EXPECT_GT(per_hop, static_cast<int>(net->ap_count()) / 2);
}

}  // namespace
}  // namespace w11
