// Cross-module integration tests: full testbed + channel assignment
// pipelines, mirroring the paper's experimental setups end to end.

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/turboca/service.hpp"
#include "scenario/testbed.hpp"
#include "workload/topology.hpp"
#include "workload/traffic.hpp"

namespace w11 {
namespace {

// ------------------------------ testbed (packet-level DES) --------------

TEST(Integration, TwoApsOnSameChannelShareAirtimeFairly) {
  // §5.6.3: co-channel APs each consume a fair share of airtime.
  scenario::TestbedConfig cfg;
  cfg.n_aps = 2;
  cfg.n_clients_per_ap = 5;
  cfg.duration = time::seconds(4);
  // Identical link budgets on both cells so throughput reflects airtime.
  cfg.client_min_dist_m = cfg.client_max_dist_m = 10.0;
  cfg.prop.shadowing_sigma = 0.0;
  cfg.rate_control.fading_sigma = 0.0;
  scenario::Testbed tb(cfg);
  tb.run();
  const double t0 = tb.ap_throughput_mbps(0);
  const double t1 = tb.ap_throughput_mbps(1);
  ASSERT_GT(t0, 0.0);
  ASSERT_GT(t1, 0.0);
  EXPECT_GT(std::min(t0, t1) / std::max(t0, t1), 0.6);
}

TEST(Integration, DeterministicAcrossRuns) {
  auto run = [] {
    scenario::TestbedConfig cfg;
    cfg.n_clients_per_ap = 6;
    cfg.duration = time::seconds(2);
    cfg.seed = 42;
    scenario::Testbed tb(cfg);
    tb.run();
    return tb.aggregate_throughput_mbps();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Integration, SeedChangesOutcomeButNotOrdering) {
  auto run = [](std::uint64_t seed, bool fa) {
    scenario::TestbedConfig cfg;
    cfg.n_clients_per_ap = 12;
    cfg.duration = time::seconds(3);
    cfg.seed = seed;
    cfg.fastack = {fa};
    scenario::Testbed tb(cfg);
    tb.run();
    return tb.aggregate_throughput_mbps();
  };
  for (std::uint64_t seed : {7ull, 21ull, 99ull}) {
    EXPECT_GT(run(seed, true), run(seed, false))
        << "FastACK must win at every seed, seed=" << seed;
  }
}

TEST(Integration, MixedFastackDeployment) {
  // Fig. 18 case (ii): AP1 baseline, AP2 FastACK — the FastACK AP gains,
  // and the pair's total beats all-baseline.
  auto total = [](const std::vector<bool>& fa) {
    double t0 = 0, t1 = 0;
    // Comparable cells, as in the paper's testbed, and a couple of seeds:
    // single-seed multi-AP runs are within a few percent of noise.
    for (std::uint64_t seed : {1ull, 13ull}) {
      scenario::TestbedConfig cfg;
      cfg.n_aps = 2;
      cfg.n_clients_per_ap = 8;
      cfg.duration = time::seconds(4);
      cfg.fastack = fa;
      cfg.seed = seed;
      cfg.symmetric_cells = true;
      scenario::Testbed tb(cfg);
      tb.run();
      t0 += tb.ap_throughput_mbps(0) / 2;
      t1 += tb.ap_throughput_mbps(1) / 2;
    }
    return std::pair{t0, t1};
  };
  const auto [b0, b1] = total({false, false});
  const auto [m0, m1] = total({false, true});
  EXPECT_GT(m1, b1);            // the FastACK AP improves
  EXPECT_GT(m0 + m1, b0 + b1);  // the network improves overall
}

TEST(Integration, TcpLatencyGapGrowsWithClients) {
  // Fig. 10's shape at two points: the (TCP - 802.11) latency gap widens
  // as contention rises.
  auto gap_ms = [](int clients) {
    scenario::TestbedConfig cfg;
    cfg.n_clients_per_ap = clients;
    cfg.duration = time::seconds(4);
    scenario::Testbed tb(cfg);
    tb.run();
    const auto& st = tb.ap(0).stats();
    double l80211 = 0.0;
    std::size_t n = 0;
    for (const auto& s : st.latency_80211_by_ac) {
      if (s.count() == 0) continue;
      l80211 += s.mean() * static_cast<double>(s.count());
      n += s.count();
    }
    l80211 /= static_cast<double>(n);
    return st.tcp_latency.mean() - l80211;
  };
  EXPECT_GT(gap_ms(20), gap_ms(4));
}

TEST(Integration, WirelessLossRecoveredTransparently) {
  // Push clients to the cell edge so PER-driven MPDU loss is common; TCP
  // must still deliver correct data (receiver never sees overflow/holes in
  // delivered stream by construction of rcv_nxt).
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 4;
  cfg.client_min_dist_m = 45.0;
  cfg.client_max_dist_m = 60.0;
  cfg.duration = time::seconds(4);
  scenario::Testbed tb(cfg);
  tb.run();
  std::uint64_t lost = 0;
  for (const auto& v : tb.ap(0).stats().mpdus_lost_by_ac) lost += v;
  EXPECT_GT(tb.aggregate_throughput_mbps(), 1.0);
  // Edge clients at 80 MHz genuinely lose MPDUs...
  EXPECT_GT(lost + tb.ap(0).stats().queue_drops, 0u);
}

// --------------------------- channel assignment pipeline ----------------

turboca::NetworkHooks hooks_for(flowsim::Network& net) {
  turboca::NetworkHooks h;
  h.scan = [&net] { return net.scan(); };
  h.current_plan = [&net] { return net.current_plan(); };
  h.apply_plan = [&net](const ChannelPlan& p) { net.apply_plan(p); };
  return h;
}

TEST(Integration, TurboCaRespondsToChurnReservedCaStaysStale) {
  // The mechanism behind Table 2 / Figs. 8-9: both services optimize the
  // fresh network, then strong interferers land on in-use channels.
  // TurboCA's 15-minute cadence re-plans within the window; ReservedCA's
  // 5-hour period leaves it stale, so post-churn utilization (and thus TCP
  // latency) stays high.
  auto post_churn_latency = [](bool use_turbo) {
    workload::CampusConfig cc;
    cc.n_aps = 40;
    cc.buildings = 6;
    cc.seed = 31;
    auto net = workload::make_campus(cc);

    std::unique_ptr<turboca::TurboCaService> turbo;
    std::unique_ptr<turboca::ReservedCaService> reserved;
    if (use_turbo) {
      turbo = std::make_unique<turboca::TurboCaService>(
          turboca::Params{}, turboca::TurboCaService::Schedule{},
          hooks_for(*net), Rng(55));
      turbo->run_now({1, 0});
    } else {
      reserved = std::make_unique<turboca::ReservedCaService>(
          turboca::ReservedCaService::Config{}, turboca::Params{},
          hooks_for(*net), Rng(55));
      reserved->run_now();
    }

    // Churn: interferers park on the channels several APs now occupy.
    for (std::size_t k = 0; k < 6; ++k) {
      const auto& victim = net->aps()[k * 5];
      flowsim::ExternalInterferer intf;
      intf.pos = victim.pos;
      intf.channel = victim.channel;
      intf.duty_cycle = 0.8;
      net->add_interferer(intf);
    }

    // Two hours pass; TurboCA fires ~8 fast runs, ReservedCA none.
    for (int step = 1; step <= 8; ++step) {
      const Time now = time::minutes(15 * step);
      if (turbo) turbo->advance_to(now);
      if (reserved) reserved->advance_to(now);
    }
    const auto ev = net->evaluate();
    auto lat = net->sample_tcp_latency(ev, 50, 0.0);
    return lat.median();
  };
  EXPECT_LT(post_churn_latency(true), post_churn_latency(false));
}

TEST(Integration, OfficeUtilizationFarExceedsTypicalCampus) {
  // Fig. 2's qualitative claim: the dense HQ office sees dramatically
  // higher utilization than typical large networks.
  workload::OfficeConfig oc;
  oc.n_aps = 33;
  oc.n_clients = 350;
  auto office = workload::make_office(oc);
  Rng r1(3);
  workload::randomize_channels(*office, ChannelWidth::MHz40, r1);

  workload::CampusConfig cc;
  cc.n_aps = 40;
  cc.seed = 37;
  cc.clients_per_ap_mean = 4.0;
  cc.offered_per_client_mbps = 0.6;
  auto campus = workload::make_campus(cc);
  Rng r2(4);
  workload::randomize_channels(*campus, ChannelWidth::MHz40, r2);

  const double office_util =
      office->sample_utilization(office->evaluate()).median();
  const double campus_util =
      campus->sample_utilization(campus->evaluate()).median();
  EXPECT_GT(office_util, campus_util * 2.0);
}

}  // namespace
}  // namespace w11
