// Unit tests for mac/: EDCA, timing, aggregation, BlockAck, medium.

#include <gtest/gtest.h>

#include "mac/aggregation.hpp"
#include "mac/blockack.hpp"
#include "mac/edca.hpp"
#include "mac/medium.hpp"
#include "mac/timing.hpp"

namespace w11 {
namespace {

using mac::AmpduLimits;
using mac::BlockAckBitmap;
using mac::Contender;
using mac::Medium;
using mac::MediumConfig;
using mac::TxDescriptor;

// ---------------------------------------------------------------- EDCA --

TEST(Edca, AggressivenessOrdering) {
  // More aggressive ACs have smaller AIFSN and CWmin.
  EXPECT_GT(edca_params(AccessCategory::BK).aifsn,
            edca_params(AccessCategory::BE).aifsn);
  EXPECT_GT(edca_params(AccessCategory::BE).aifsn,
            edca_params(AccessCategory::VI).aifsn);
  EXPECT_GE(edca_params(AccessCategory::VI).aifsn,
            edca_params(AccessCategory::VO).aifsn);
  EXPECT_GT(edca_params(AccessCategory::BE).cw_min,
            edca_params(AccessCategory::VI).cw_min);
  EXPECT_GT(edca_params(AccessCategory::VI).cw_min,
            edca_params(AccessCategory::VO).cw_min);
}

TEST(Edca, AggressiveAcsExhaustRetriesSooner) {
  // §3.2.4: "frames in a more aggressive AC ... exhaust retry attempts more
  // quickly".
  EXPECT_LT(edca_params(AccessCategory::VO).retry_limit,
            edca_params(AccessCategory::BE).retry_limit);
}

TEST(Edca, DscpMapping) {
  EXPECT_EQ(dscp_to_ac(0), AccessCategory::BE);    // CS0
  EXPECT_EQ(dscp_to_ac(8), AccessCategory::BK);    // CS1
  EXPECT_EQ(dscp_to_ac(16), AccessCategory::BK);   // CS2
  EXPECT_EQ(dscp_to_ac(24), AccessCategory::VI);   // CS3
  EXPECT_EQ(dscp_to_ac(32), AccessCategory::VI);   // CS4
  EXPECT_EQ(dscp_to_ac(46), AccessCategory::VO);   // EF
  EXPECT_EQ(dscp_to_ac(56), AccessCategory::VO);   // CS7
}

TEST(Edca, AifsComputation) {
  // AIFS = SIFS + AIFSN * slot.
  EXPECT_EQ(mac::aifs(AccessCategory::BE),
            time::micros(16) + 3 * time::micros(9));
  EXPECT_EQ(mac::aifs(AccessCategory::VO),
            time::micros(16) + 2 * time::micros(9));
}

TEST(Edca, ToString) {
  EXPECT_STREQ(to_string(AccessCategory::BK), "BK");
  EXPECT_STREQ(to_string(AccessCategory::VO), "VO");
}

// --------------------------------------------------------- Aggregation --

TEST(Aggregation, AirtimeGrowsWithMpdus) {
  const RateMbps rate{866.7};
  const Time one = mac::ampdu_airtime(1, Bytes{1500}, rate);
  const Time many = mac::ampdu_airtime(64, Bytes{1500}, rate);
  EXPECT_GT(many, one);
  // Preamble amortization: 64 MPDUs cost far less than 64 single frames.
  EXPECT_LT(many.ns(), 64 * one.ns());
}

TEST(Aggregation, MaxAggregateRespectsMpduCap) {
  // At a high rate the 64-MPDU limit binds before the airtime limit.
  EXPECT_EQ(mac::max_aggregate_size(1000, Bytes{1500}, RateMbps{866.7}), 64);
  EXPECT_EQ(mac::max_aggregate_size(10, Bytes{1500}, RateMbps{866.7}), 10);
  EXPECT_EQ(mac::max_aggregate_size(0, Bytes{1500}, RateMbps{866.7}), 0);
}

TEST(Aggregation, AirtimeLimitBindsAtLowRates) {
  // At 26 Mbps, 5.3 ms fits ~17 kB: far fewer than 64 MPDUs.
  const int n = mac::max_aggregate_size(1000, Bytes{1500}, RateMbps{26.0});
  EXPECT_LT(n, 64);
  EXPECT_GE(n, 1);
  EXPECT_LE(mac::ampdu_airtime(n, Bytes{1500}, RateMbps{26.0}),
            mac::kMaxAmpduAirtime);
}

TEST(Aggregation, AtLeastOneMpduEvenIfOversized) {
  // A single MPDU is sent even when it alone exceeds the airtime budget.
  EXPECT_EQ(mac::max_aggregate_size(5, Bytes{1500}, RateMbps{1.0}), 1);
}

TEST(Aggregation, TxopDurationIncludesRtsCtsWhenProtected) {
  const Time bare = mac::txop_duration(16, Bytes{1500}, RateMbps{433.3}, false);
  const Time prot = mac::txop_duration(16, Bytes{1500}, RateMbps{433.3}, true);
  const Time overhead = mac::control_frame_airtime(mac::kRtsBytes) + mac::kSifs +
                        mac::control_frame_airtime(mac::kCtsBytes) + mac::kSifs;
  EXPECT_EQ(prot - bare, overhead);
}

TEST(Aggregation, CustomLimits) {
  AmpduLimits limits;
  limits.max_mpdus = 8;
  EXPECT_EQ(mac::max_aggregate_size(100, Bytes{1500}, RateMbps{866.7}, limits), 8);
}

// ------------------------------------------------------------ BlockAck --

TEST(BlockAck, RecordAndQuery) {
  BlockAckBitmap bm(100);
  bm.record(100, true);
  bm.record(101, false);
  bm.record(103, true);
  EXPECT_TRUE(bm.delivered(100));
  EXPECT_FALSE(bm.delivered(101));
  EXPECT_FALSE(bm.delivered(102));  // never recorded
  EXPECT_TRUE(bm.delivered(103));
  EXPECT_EQ(bm.delivered_count(), 2);
  EXPECT_EQ(bm.window_size(), 4u);
  EXPECT_EQ(bm.delivered_seqs(), (std::vector<std::uint64_t>{100, 103}));
}

TEST(BlockAck, BelowWindowIsNotDelivered) {
  BlockAckBitmap bm(50);
  EXPECT_FALSE(bm.delivered(49));
  EXPECT_THROW(bm.record(49, true), std::logic_error);
}

// -------------------------------------------------------------- Medium --

// A scripted contender: transmits fixed-duration frames while it has
// credit; counts grants and collisions.
class FakeContender : public Contender {
 public:
  FakeContender(Medium& medium, AccessCategory ac, Time frame)
      : medium_(medium), ac_(ac), frame_(frame) {}

  void give_frames(int n) {
    credit_ += n;
    medium_.set_backlogged(this, credit_ > 0);
  }

  TxDescriptor begin_txop() override {
    ++grants;
    return TxDescriptor{frame_, 1};
  }
  void end_txop(bool collided) override {
    if (collided) {
      ++collisions;
    } else {
      --credit_;
      ++successes;
    }
    medium_.set_backlogged(this, credit_ > 0);
  }
  [[nodiscard]] AccessCategory access_category() const override { return ac_; }

  int grants = 0;
  int successes = 0;
  int collisions = 0;

 private:
  Medium& medium_;
  AccessCategory ac_;
  Time frame_;
  int credit_ = 0;
};

TEST(Medium, SingleContenderGetsServed) {
  Simulator sim;
  Medium medium(sim, MediumConfig{}, Rng(1));
  FakeContender c(medium, AccessCategory::BE, time::millis(1));
  medium.attach(&c);
  c.give_frames(5);
  sim.run_until(time::seconds(1));
  EXPECT_EQ(c.successes, 5);
  EXPECT_EQ(c.collisions, 0);
  EXPECT_EQ(medium.txop_count(), 5u);
  EXPECT_EQ(medium.total_busy_time(), 5 * time::millis(1));
}

TEST(Medium, TwoContendersBothDrainAndShareAirtime) {
  Simulator sim;
  Medium medium(sim, MediumConfig{}, Rng(2));
  FakeContender a(medium, AccessCategory::BE, time::millis(1));
  FakeContender b(medium, AccessCategory::BE, time::millis(1));
  medium.attach(&a);
  medium.attach(&b);
  a.give_frames(50);
  b.give_frames(50);
  sim.run_until(time::seconds(5));
  EXPECT_EQ(a.successes, 50);
  EXPECT_EQ(b.successes, 50);
  // §5.6.3: co-channel peers get roughly fair airtime.
  const double ratio = static_cast<double>(medium.airtime_of(&a).ns()) /
                       static_cast<double>(medium.airtime_of(&b).ns());
  EXPECT_GT(ratio, 0.6);
  EXPECT_LT(ratio, 1.7);
}

TEST(Medium, CollisionsHappenAndAreCounted) {
  Simulator sim;
  Medium medium(sim, MediumConfig{}, Rng(3));
  std::vector<std::unique_ptr<FakeContender>> cs;
  for (int i = 0; i < 12; ++i) {
    cs.push_back(std::make_unique<FakeContender>(medium, AccessCategory::BE,
                                                 time::micros(500)));
    medium.attach(cs.back().get());
  }
  for (auto& c : cs) c->give_frames(50);
  sim.run_until(time::seconds(10));
  EXPECT_GT(medium.collision_count(), 0u);
  for (auto& c : cs) EXPECT_EQ(c->successes, 50);  // all drain eventually
}

TEST(Medium, RtsCtsLimitsCollisionCost) {
  // With RTS/CTS a collision only burns the RTS airtime, so total busy time
  // is lower than without protection under identical contention.
  auto total_busy = [](bool rts) {
    Simulator sim;
    MediumConfig cfg;
    cfg.rts_cts = rts;
    Medium medium(sim, cfg, Rng(4));
    std::vector<std::unique_ptr<FakeContender>> cs;
    std::uint64_t collisions = 0;
    for (int i = 0; i < 10; ++i) {
      cs.push_back(std::make_unique<FakeContender>(medium, AccessCategory::BE,
                                                   time::millis(3)));
      medium.attach(cs.back().get());
    }
    for (auto& c : cs) c->give_frames(30);
    sim.run_until(time::seconds(60));
    for (auto& c : cs) EXPECT_EQ(c->successes, 30);
    collisions = medium.collision_count();
    EXPECT_GT(collisions, 0u);
    // Useful airtime is identical (300 frames x 3 ms); the difference is
    // pure collision cost.
    return medium.total_busy_time() - 300 * time::millis(3);
  };
  EXPECT_LT(total_busy(true), total_busy(false));
}

TEST(Medium, VoiceBeatsBackgroundUnderContention) {
  Simulator sim;
  Medium medium(sim, MediumConfig{}, Rng(5));
  FakeContender vo(medium, AccessCategory::VO, time::micros(300));
  FakeContender bk(medium, AccessCategory::BK, time::micros(300));
  medium.attach(&vo);
  medium.attach(&bk);
  // Saturated: both always backlogged for the whole run.
  vo.give_frames(100000);
  bk.give_frames(100000);
  sim.run_until(time::seconds(2));
  // VO's shorter AIFS and tiny CW must win far more TXOPs.
  EXPECT_GT(vo.successes, bk.successes * 2);
}

TEST(Medium, DetachStopsService) {
  Simulator sim;
  Medium medium(sim, MediumConfig{}, Rng(6));
  FakeContender c(medium, AccessCategory::BE, time::millis(1));
  medium.attach(&c);
  c.give_frames(1000);
  sim.run_until(time::millis(20));
  const int before = c.successes;
  EXPECT_GT(before, 0);
  medium.detach(&c);
  sim.run_until(time::millis(200));
  EXPECT_EQ(c.successes, before);
}

TEST(Medium, AttachRejectsDuplicatesAndNull) {
  Simulator sim;
  Medium medium(sim, MediumConfig{}, Rng(7));
  FakeContender c(medium, AccessCategory::BE, time::millis(1));
  medium.attach(&c);
  EXPECT_THROW(medium.attach(&c), std::logic_error);
  EXPECT_THROW(medium.attach(nullptr), std::logic_error);
}

TEST(Medium, UtilizationAccounting) {
  Simulator sim;
  Medium medium(sim, MediumConfig{}, Rng(8));
  FakeContender c(medium, AccessCategory::BE, time::millis(10));
  medium.attach(&c);
  const Time t0 = sim.now();
  const Time busy0 = medium.total_busy_time();
  c.give_frames(5);
  sim.run_until(time::millis(200));
  const double util = medium.utilization(t0, busy0);
  // 5 frames x 10 ms = 50 ms busy out of 200 ms = 25 %.
  EXPECT_NEAR(util, 0.25, 0.01);
}

TEST(Medium, ContentionLatencyGrowsWithContenders) {
  // The root cause behind Fig. 10: more contenders -> longer mean access
  // delay. Measure mean time between give_frames and success for one probe.
  auto mean_drain_time = [](int n_others) {
    Simulator sim;
    Medium medium(sim, MediumConfig{}, Rng(9));
    std::vector<std::unique_ptr<FakeContender>> others;
    for (int i = 0; i < n_others; ++i) {
      others.push_back(std::make_unique<FakeContender>(
          medium, AccessCategory::BE, time::millis(2)));
      medium.attach(others.back().get());
    }
    FakeContender probe(medium, AccessCategory::BE, time::micros(100));
    medium.attach(&probe);
    for (auto& o : others) o->give_frames(1'000'000);
    probe.give_frames(200);
    sim.run_until(time::seconds(4));
    return static_cast<double>(probe.successes);
  };
  // More contenders -> fewer probe completions in the same wall-clock.
  const double alone = mean_drain_time(0);
  const double crowded = mean_drain_time(15);
  EXPECT_GT(alone, crowded * 1.5);
}

}  // namespace
}  // namespace w11
