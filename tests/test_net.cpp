// Unit tests for net/: wired links and the TCP implementation.

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "net/tcp_receiver.hpp"
#include "net/tcp_segment.hpp"
#include "net/tcp_sender.hpp"
#include "net/wired_link.hpp"
#include "sim/simulator.hpp"

namespace w11 {
namespace {

// ----------------------------------------------------------- WiredLink --

TEST(WiredLink, DeliversWithSerializationAndPropagation) {
  Simulator sim;
  std::vector<Time> arrivals;
  WiredLink::Config cfg;
  cfg.rate = RateMbps{100.0};
  cfg.propagation = time::micros(50);
  WiredLink link(sim, cfg, [&](TcpSegment) { arrivals.push_back(sim.now()); });

  TcpSegment seg;
  seg.payload = 1210;  // 1250 B wire size = 10 kbit -> 100 us at 100 Mbps
  link.send(seg);
  sim.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], time::micros(150));
  EXPECT_EQ(link.delivered_count(), 1u);
}

TEST(WiredLink, PreservesFifoOrder) {
  Simulator sim;
  std::vector<std::uint64_t> seqs;
  WiredLink link(sim, {}, [&](TcpSegment s) { seqs.push_back(s.seq); });
  for (std::uint64_t i = 0; i < 10; ++i) {
    TcpSegment seg;
    seg.seq = i;
    seg.payload = 1460;
    link.send(seg);
  }
  sim.run();
  ASSERT_EQ(seqs.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(seqs[i], i);
}

TEST(WiredLink, DropsWhenQueueFull) {
  Simulator sim;
  WiredLink::Config cfg;
  cfg.queue_packets = 4;
  cfg.rate = RateMbps{1.0};  // slow, so the queue backs up
  int delivered = 0;
  WiredLink link(sim, cfg, [&](TcpSegment) { ++delivered; });
  for (int i = 0; i < 20; ++i) {
    TcpSegment seg;
    seg.payload = 1460;
    link.send(seg);
  }
  sim.run();
  EXPECT_GT(link.dropped_count(), 0u);
  EXPECT_EQ(link.delivered_count() + link.dropped_count(), 20u);
  EXPECT_EQ(delivered, static_cast<int>(link.delivered_count()));
}

TEST(WiredLink, PipelinesSerialization) {
  // Second packet starts serializing when the first leaves the NIC, not
  // after its propagation completes.
  Simulator sim;
  std::vector<Time> arrivals;
  WiredLink::Config cfg;
  cfg.rate = RateMbps{100.0};
  cfg.propagation = time::millis(10);
  WiredLink link(sim, cfg, [&](TcpSegment) { arrivals.push_back(sim.now()); });
  TcpSegment seg;
  seg.payload = 1210;  // 100 us serialization
  link.send(seg);
  link.send(seg);
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ((arrivals[1] - arrivals[0]), time::micros(100));
}

// -------------------------------------------------- TCP loopback rig ----

// Connects a TcpSender and TcpReceiver through configurable delay and a
// per-segment drop predicate, so loss/reorder scenarios are scriptable.
class TcpRig {
 public:
  struct Options {
    TcpSender::Config sender;
    TcpReceiver::Config receiver;
    Time one_way = time::millis(5);
    // Return true to drop this data segment (by transmission index).
    std::function<bool(std::uint64_t tx_index, const TcpSegment&)> drop_data;
  };

  explicit TcpRig(Options opt) : opt_(std::move(opt)) {
    receiver_ = std::make_unique<TcpReceiver>(
        sim_, FlowId{1}, opt_.receiver, [this](TcpSegment ack) {
          sim_.schedule_after(opt_.one_way, [this, ack = std::move(ack)] {
            sender_->on_ack(ack);
          });
        });
    sender_ = std::make_unique<TcpSender>(
        sim_, FlowId{1}, StationId{1}, opt_.sender, [this](TcpSegment seg) {
          const std::uint64_t idx = tx_index_++;
          if (opt_.drop_data && opt_.drop_data(idx, seg)) {
            ++dropped_;
            return;
          }
          sim_.schedule_after(opt_.one_way, [this, seg = std::move(seg)] {
            receiver_->on_data(seg);
          });
        });
  }

  Simulator sim_;
  Options opt_;
  std::unique_ptr<TcpReceiver> receiver_;
  std::unique_ptr<TcpSender> sender_;
  std::uint64_t tx_index_ = 0;
  std::uint64_t dropped_ = 0;
};

// ------------------------------------------------------------ TcpBasic --

TEST(Tcp, TransfersExactByteCountLossless) {
  TcpRig rig({});
  rig.sender_->start(units::kilobytes(500));
  rig.sim_.run_until(time::seconds(30));
  EXPECT_TRUE(rig.sender_->finished());
  EXPECT_EQ(rig.receiver_->bytes_delivered(), 500'000u);
  EXPECT_EQ(rig.sender_->stats().rto_events, 0u);
  EXPECT_EQ(rig.sender_->stats().fast_retransmits, 0u);
}

TEST(Tcp, SlowStartDoublesPerRtt) {
  TcpRig rig({});
  rig.sender_->enable_cwnd_trace();
  rig.sender_->start();  // unlimited
  rig.sim_.run_until(time::millis(100));  // ~10 RTTs
  // cwnd must have grown well beyond the initial 10 segments.
  EXPECT_GT(rig.sender_->cwnd_segments(), 100.0);
  // Trace is monotone during pure slow start (no loss).
  const auto& trace = rig.sender_->cwnd_trace();
  ASSERT_GT(trace.size(), 2u);
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_GE(trace[i].second, trace[i - 1].second);
}

TEST(Tcp, CwndCappedAtConfiguredMax) {
  TcpRig::Options opt;
  opt.sender.max_cwnd_segments = 770;  // the paper's OS default
  TcpRig rig(opt);
  rig.sender_->start();
  rig.sim_.run_until(time::seconds(10));
  EXPECT_LE(rig.sender_->cwnd_segments(), 770.0 + 1e-6);
  EXPECT_GT(rig.sender_->cwnd_segments(), 700.0);
}

TEST(Tcp, RespectsPeerReceiveWindow) {
  TcpRig::Options opt;
  opt.receiver.buffer = units::kilobytes(64);  // small rwnd
  TcpRig rig(opt);
  rig.sender_->start();
  rig.sim_.run_until(time::millis(200));
  // In-flight bytes can never exceed the advertised window.
  EXPECT_LE(rig.sender_->snd_nxt() - rig.sender_->snd_una(), 64'000u);
}

TEST(Tcp, FastRetransmitOnTripleDupack) {
  TcpRig::Options opt;
  opt.drop_data = [](std::uint64_t idx, const TcpSegment&) {
    return idx == 20;  // drop exactly one mid-stream segment
  };
  TcpRig rig(opt);
  rig.sender_->start(units::kilobytes(300));
  rig.sim_.run_until(time::seconds(30));
  EXPECT_TRUE(rig.sender_->finished());
  EXPECT_EQ(rig.receiver_->bytes_delivered(), 300'000u);
  EXPECT_GE(rig.sender_->stats().fast_retransmits, 1u);
  EXPECT_EQ(rig.sender_->stats().rto_events, 0u);  // recovered without RTO
}

TEST(Tcp, RecoversFromBurstLossViaSack) {
  TcpRig::Options opt;
  opt.drop_data = [](std::uint64_t idx, const TcpSegment&) {
    return idx >= 30 && idx < 36;  // drop a burst of six
  };
  TcpRig rig(opt);
  rig.sender_->start(units::kilobytes(400));
  rig.sim_.run_until(time::seconds(60));
  EXPECT_TRUE(rig.sender_->finished());
  EXPECT_EQ(rig.receiver_->bytes_delivered(), 400'000u);
}

TEST(Tcp, RtoRecoversFromTotalBlackout) {
  // Drop everything for a window, forcing a retransmission timeout.
  TcpRig::Options opt;
  bool blackout = true;
  opt.drop_data = [&blackout](std::uint64_t, const TcpSegment&) {
    return blackout;
  };
  TcpRig rig(opt);
  rig.sender_->start(units::kilobytes(50));
  rig.sim_.run_until(time::seconds(2));
  EXPECT_GE(rig.sender_->stats().rto_events, 1u);
  blackout = false;
  rig.sim_.run_until(time::seconds(120));
  EXPECT_TRUE(rig.sender_->finished());
  EXPECT_EQ(rig.receiver_->bytes_delivered(), 50'000u);
}

TEST(Tcp, CwndCollapsesOnRto) {
  TcpRig::Options opt;
  bool blackout = false;
  opt.drop_data = [&blackout](std::uint64_t, const TcpSegment&) {
    return blackout;
  };
  TcpRig rig(opt);
  rig.sender_->start();
  rig.sim_.run_until(time::millis(300));
  EXPECT_GT(rig.sender_->cwnd_segments(), 50.0);
  blackout = true;
  rig.sim_.run_until(time::seconds(3));
  EXPECT_LE(rig.sender_->cwnd_segments(), 2.0);  // collapsed to ~1 MSS
}

TEST(Tcp, RttEstimateTracksPathDelay) {
  TcpRig::Options opt;
  opt.one_way = time::millis(25);
  TcpRig rig(opt);
  rig.sender_->start();
  rig.sim_.run_until(time::seconds(3));
  // SRTT should be near 50 ms RTT (delayed-ACK adds a little).
  EXPECT_GT(rig.sender_->smoothed_rtt(), time::millis(45));
  EXPECT_LT(rig.sender_->smoothed_rtt(), time::millis(120));
  EXPECT_GE(rig.sender_->current_rto(), time::millis(200));  // floor
}

TEST(Tcp, CubicAlsoCompletesAndGrows) {
  TcpRig::Options opt;
  opt.sender.algo = TcpSender::CcAlgo::kCubic;
  opt.drop_data = [](std::uint64_t idx, const TcpSegment&) {
    return idx == 50;
  };
  TcpRig rig(opt);
  rig.sender_->start(units::kilobytes(800));
  rig.sim_.run_until(time::seconds(60));
  EXPECT_TRUE(rig.sender_->finished());
  EXPECT_EQ(rig.receiver_->bytes_delivered(), 800'000u);
}

TEST(Tcp, LateAckAfterRtoRewindDoesNotCorruptState) {
  // Regression: an ACK covering data sent before an RTO rewound snd_nxt
  // must not leave snd_una > snd_nxt (in-flight accounting would underflow
  // and cwnd/ssthresh explode).
  Simulator sim;
  std::vector<TcpSegment> sent;
  TcpSender snd(sim, FlowId{1}, StationId{1}, {},
                [&](TcpSegment s) { sent.push_back(std::move(s)); });
  snd.start();
  sim.run_until(time::millis(1));
  ASSERT_GE(sent.size(), 10u);  // initial window went out

  // Total silence forces an RTO; snd_nxt rewinds and slow start re-sends
  // one segment.
  sim.run_until(time::seconds(2));
  EXPECT_GE(snd.stats().rto_events, 1u);
  EXPECT_EQ(snd.snd_nxt(), snd.snd_una() + 1460);

  // Now the "lost" ACK for the entire initial flight arrives late.
  TcpSegment ack;
  ack.flow = FlowId{1};
  ack.is_ack = true;
  ack.ack = 10 * 1460;
  ack.rwnd = 1 << 20;
  snd.on_ack(ack);
  EXPECT_EQ(snd.snd_una(), 10u * 1460u);
  EXPECT_GE(snd.snd_nxt(), snd.snd_una());
  EXPECT_LT(snd.cwnd_segments(), 1000.0);  // sane, not exploded

  // Dup-ack storm right after must not underflow ssthresh either.
  for (int i = 0; i < 4; ++i) snd.on_ack(ack);
  EXPECT_LT(snd.cwnd_segments(), 1000.0);
}

TEST(Tcp, SenderStartTwiceRejected) {
  TcpRig rig({});
  rig.sender_->start(units::kilobytes(1));
  EXPECT_THROW(rig.sender_->start(units::kilobytes(1)), std::logic_error);
}

// --------------------------------------------------------- TcpReceiver --

TEST(TcpReceiver, DelayedAckEveryTwoSegments) {
  Simulator sim;
  std::vector<TcpSegment> acks;
  TcpReceiver rx(sim, FlowId{1}, {}, [&](TcpSegment a) { acks.push_back(a); });
  for (int i = 0; i < 6; ++i) {
    TcpSegment seg;
    seg.flow = FlowId{1};
    seg.seq = static_cast<std::uint64_t>(i) * 1460;
    seg.payload = 1460;
    rx.on_data(seg);
  }
  sim.run_until(time::millis(1));
  EXPECT_EQ(acks.size(), 3u);  // one per two segments
  EXPECT_EQ(acks.back().ack, 6u * 1460u);
}

TEST(TcpReceiver, DelayedAckTimerFiresForOddSegment) {
  Simulator sim;
  std::vector<TcpSegment> acks;
  TcpReceiver::Config cfg;
  cfg.delayed_ack = time::millis(40);
  TcpReceiver rx(sim, FlowId{1}, cfg, [&](TcpSegment a) { acks.push_back(a); });
  TcpSegment seg;
  seg.payload = 1460;
  rx.on_data(seg);
  sim.run_until(time::millis(39));
  EXPECT_TRUE(acks.empty());
  sim.run_until(time::millis(41));
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].ack, 1460u);
}

TEST(TcpReceiver, OutOfOrderTriggersImmediateDupAckWithSack) {
  Simulator sim;
  std::vector<TcpSegment> acks;
  TcpReceiver rx(sim, FlowId{1}, {}, [&](TcpSegment a) { acks.push_back(a); });
  TcpSegment seg;
  seg.payload = 1460;
  seg.seq = 2920;  // skip the first two segments
  rx.on_data(seg);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].ack, 0u);
  ASSERT_EQ(acks[0].sacks.size(), 1u);
  EXPECT_EQ(acks[0].sacks[0].start, 2920u);
  EXPECT_EQ(acks[0].sacks[0].end, 4380u);
  EXPECT_EQ(rx.stats().dup_acks_sent, 1u);
}

TEST(TcpReceiver, ReassemblesAfterHoleFilled) {
  Simulator sim;
  std::vector<TcpSegment> acks;
  TcpReceiver rx(sim, FlowId{1}, {}, [&](TcpSegment a) { acks.push_back(a); });
  TcpSegment s1, s2, s0;
  s0.payload = s1.payload = s2.payload = 1460;
  s1.seq = 1460;
  s2.seq = 2920;
  rx.on_data(s1);
  rx.on_data(s2);
  EXPECT_EQ(rx.rcv_nxt(), 0u);
  rx.on_data(s0);  // fills the hole
  EXPECT_EQ(rx.rcv_nxt(), 4380u);
  EXPECT_EQ(rx.bytes_delivered(), 4380u);
}

TEST(TcpReceiver, DuplicateOldSegmentReAcked) {
  Simulator sim;
  std::vector<TcpSegment> acks;
  TcpReceiver rx(sim, FlowId{1}, {}, [&](TcpSegment a) { acks.push_back(a); });
  TcpSegment s;
  s.payload = 1460;
  rx.on_data(s);
  rx.on_data(s);  // exact duplicate
  EXPECT_EQ(rx.stats().duplicate_segments, 1u);
  EXPECT_FALSE(acks.empty());
  EXPECT_EQ(acks.back().ack, 1460u);
}

TEST(TcpReceiver, WindowOverflowDropsBeyondBuffer) {
  Simulator sim;
  TcpReceiver::Config cfg;
  cfg.buffer = Bytes{4380};  // 3 segments
  TcpReceiver rx(sim, FlowId{1}, cfg, [](TcpSegment) {});
  TcpSegment far;
  far.payload = 1460;
  far.seq = 100'000;  // way past rcv_nxt + buffer
  rx.on_data(far);
  EXPECT_EQ(rx.stats().window_overflow_drops, 1u);
}

TEST(TcpReceiver, AdvertisedWindowShrinksWithHeldOoo) {
  Simulator sim;
  TcpReceiver::Config cfg;
  cfg.buffer = units::kilobytes(100);
  TcpReceiver rx(sim, FlowId{1}, cfg, [](TcpSegment) {});
  EXPECT_EQ(rx.advertised_window(), 100'000u);
  TcpSegment ooo;
  ooo.payload = 1460;
  ooo.seq = 1460;
  rx.on_data(ooo);
  EXPECT_EQ(rx.advertised_window(), 100'000u - 1460u);
}

TEST(TcpReceiver, SackBlocksLimitedToThree) {
  Simulator sim;
  std::vector<TcpSegment> acks;
  TcpReceiver rx(sim, FlowId{1}, {}, [&](TcpSegment a) { acks.push_back(a); });
  // Create 5 disjoint out-of-order islands.
  for (int i = 0; i < 5; ++i) {
    TcpSegment s;
    s.payload = 1460;
    s.seq = 2920u * static_cast<std::uint64_t>(i + 1);
    rx.on_data(s);
  }
  ASSERT_FALSE(acks.empty());
  EXPECT_LE(acks.back().sacks.size(), 3u);
}

TEST(TcpReceiver, MergesAdjacentOooRanges) {
  Simulator sim;
  TcpReceiver rx(sim, FlowId{1}, {}, [](TcpSegment) {});
  TcpSegment a, b;
  a.payload = b.payload = 1460;
  a.seq = 1460;
  b.seq = 2920;  // adjacent to a
  rx.on_data(a);
  rx.on_data(b);
  // One merged hole-island: advertised window reflects 2 segments held.
  EXPECT_EQ(rx.advertised_window(),
            static_cast<std::uint64_t>(TcpReceiver::Config{}.buffer.count()) -
                2920u);
}

}  // namespace
}  // namespace w11
