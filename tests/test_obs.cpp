// Observability layer (DESIGN.md §12): trace ring eviction, byte-stable
// golden JSONL exports at any worker count, metrics merge semantics, the
// telemetry bridge, and — the property everything else leans on — that
// attaching tracing or the planner audit never perturbs execution.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/turboca/turboca.hpp"
#include "exec/task_pool.hpp"
#include "flowsim/scan_index.hpp"
#include "obs/audit.hpp"
#include "obs/export.hpp"
#include "obs/gate.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry_bridge.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "telemetry/littletable.hpp"
#include "workload/topology.hpp"

namespace w11 {
namespace {

using obs::MetricsRegistry;
using obs::PlanAudit;
using obs::ScopedSpan;
using obs::TraceCategory;
using obs::TraceEvent;
using obs::TraceKind;
using obs::TraceRecorder;
using obs::TraceRing;

// ---------------------------------------------------------------- TraceRing

TEST(TraceRing, OverflowEvictsOldest) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 7; ++i)
    ring.push(TraceEvent{static_cast<std::int64_t>(i), 0, i, 0, 0,
                         TraceKind::kSimEvent});
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 3u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 0; i < snap.size(); ++i)
    EXPECT_EQ(snap[i].ord, i + 3) << "survivors must be the newest, in order";
}

TEST(TraceRing, ZeroCapacityCountsEverythingAsDropped) {
  TraceRing ring(0);
  for (std::uint64_t i = 0; i < 3; ++i)
    ring.push(TraceEvent{0, 0, i, 0, 0, TraceKind::kSimEvent});
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 3u);
}

// ------------------------------------------------------------ TraceRecorder

TEST(TraceRecorder, DisabledByDefaultRecordsNothing) {
  TraceRecorder rec;
  rec.record_at(time::micros(1), TraceKind::kSimEvent, 1);
  EXPECT_EQ(rec.total_events(), 0u);
  EXPECT_TRUE(rec.merged().empty());
}

TEST(TraceRecorder, CategoryMaskFilters) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.set_category_mask(obs::category_bit(TraceCategory::kPlanner));
  rec.record_at(time::micros(1), TraceKind::kSimEvent, 1);
  rec.record_at(time::micros(2), TraceKind::kNboPick, 2);
  auto ev = rec.merged();
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].kind, TraceKind::kNboPick);

  rec.set_category_mask(obs::kAllCategories);
  rec.record_at(time::micros(3), TraceKind::kSimEvent, 3);
  EXPECT_EQ(rec.merged().size(), 2u);
}

TEST(TraceRecorder, PerLaneOverflowAccounting) {
  TraceRecorder rec(/*per_lane_capacity=*/8);
  rec.set_enabled(true);
  for (std::uint64_t i = 0; i < 20; ++i)
    rec.record_at(time::micros(static_cast<std::int64_t>(i)),
                  TraceKind::kSimEvent, i);
  EXPECT_EQ(rec.total_events(), 8u);
  EXPECT_EQ(rec.total_dropped(), 12u);
  const auto ev = rec.merged();
  ASSERT_EQ(ev.size(), 8u);
  for (std::size_t i = 0; i < ev.size(); ++i) EXPECT_EQ(ev[i].ord, i + 12);

  rec.clear();
  EXPECT_EQ(rec.total_events(), 0u);
  EXPECT_EQ(rec.total_dropped(), 0u);
}

TEST(TraceRecorder, ScopedSpanStampsBeginAndDuration) {
  TraceRecorder rec;
  rec.set_enabled(true);
  Time clock = time::micros(100);
  rec.bind_clock(&clock);
  {
    ScopedSpan span = rec.span(TraceKind::kAmpduTx, 7, 3);
    span.set_args(3, 12);
    clock = time::micros(250);
  }
  rec.bind_clock(nullptr);
  const auto ev = rec.merged();
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].ts_ns, time::micros(100).ns());
  EXPECT_EQ(ev[0].dur_ns, time::micros(150).ns());
  EXPECT_EQ(ev[0].ord, 7u);
  EXPECT_EQ(ev[0].a, 3u);
  EXPECT_EQ(ev[0].b, 12u);
}

TEST(TraceRecorder, SpanOpenedWhileDisabledStaysInert) {
  TraceRecorder rec;
  {
    ScopedSpan span = rec.span(TraceKind::kAmpduTx, 1);
    rec.set_enabled(true);  // enabling mid-span must not record a half-span
  }
  EXPECT_EQ(rec.total_events(), 0u);
}

// The golden determinism property (satellite of DESIGN.md §12): the same
// logical workload recorded through a 1-worker and a 4-worker pool must
// export byte-identical JSONL and Chrome traces, even though events land in
// different per-thread rings.
struct Exports {
  std::string jsonl;
  std::string chrome;
};

Exports record_synthetic_workload(int workers) {
  TraceRecorder rec(std::size_t{1} << 12);
  rec.set_enabled(true);
  exec::TaskPool pool(workers);
  pool.parallel_for(500, [&rec](std::size_t i, int) {
    const auto u = static_cast<std::uint64_t>(i);
    const Time ts = time::micros(static_cast<std::int64_t>((u * 31) % 97));
    switch (i % 4) {
      case 0: rec.record_at(ts, TraceKind::kSimEvent, u, u % 13); break;
      case 1:
        rec.record_span(ts, ts + time::micros(5), TraceKind::kAmpduTx, u,
                        u % 7, u % 3);
        break;
      case 2: rec.record_at(ts, TraceKind::kNboPick, u, u % 11, u % 2); break;
      default: rec.record_at(ts, TraceKind::kCollectorPoll, u, u % 5); break;
    }
  });
  return Exports{obs::trace_jsonl_string(rec), obs::chrome_trace_string(rec)};
}

TEST(TraceRecorder, ExportBytesAreWorkerCountInvariant) {
  const Exports serial = record_synthetic_workload(1);
  const Exports threaded = record_synthetic_workload(4);
  EXPECT_FALSE(serial.jsonl.empty());
  EXPECT_EQ(serial.jsonl, threaded.jsonl);
  EXPECT_EQ(serial.chrome, threaded.chrome);
  // Spot-check the formats without a JSON parser: JSONL is one object per
  // line; the Chrome export is a single traceEvents envelope.
  EXPECT_EQ(serial.jsonl[0], '{');
  EXPECT_NE(serial.jsonl.find("\"kind\":\"sim.event\""), std::string::npos);
  EXPECT_NE(serial.chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(serial.chrome.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TraceRecorder, MergedOrdersByTimestampThenOrdinal) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.record_at(time::micros(5), TraceKind::kSimEvent, 9);
  rec.record_at(time::micros(1), TraceKind::kSimEvent, 4);
  rec.record_at(time::micros(1), TraceKind::kSimEvent, 2);
  const auto ev = rec.merged();
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_EQ(ev[0].ord, 2u);
  EXPECT_EQ(ev[1].ord, 4u);
  EXPECT_EQ(ev[2].ord, 9u);
}

// -------------------------------------------------------- Simulator tracing

#if W11_OBS
TEST(SimTracing, RecordsOneEventPerDispatchWithSimTimestamps) {
  Simulator sim;
  TraceRecorder rec;
  rec.set_enabled(true);
  sim.set_tracer(&rec);
  for (int i = 0; i < 10; ++i) sim.schedule_at(time::micros(i), [] {});
  sim.run();
  EXPECT_EQ(sim.processed_events(), 10u);
  const auto ev = rec.merged();
  ASSERT_EQ(ev.size(), 10u);
  for (std::size_t i = 0; i < ev.size(); ++i) {
    EXPECT_EQ(ev[i].kind, TraceKind::kSimEvent);
    EXPECT_EQ(ev[i].ts_ns, time::micros(static_cast<std::int64_t>(i)).ns());
    if (i > 0) {
      EXPECT_LT(ev[i - 1].ord, ev[i].ord);
    }
  }
  sim.set_tracer(nullptr);
}

TEST(SimTracing, AttachedTracerDoesNotPerturbExecution) {
  auto run_workload = [](TraceRecorder* rec) {
    Simulator sim;
    if (rec != nullptr) sim.set_tracer(rec);
    Rng rng(99);
    // A self-rescheduling chain plus scattered one-shots: enough structure
    // that any tracer-induced divergence would move the digest.
    std::function<void(int)> chain = [&](int depth) {
      if (depth == 0) return;
      sim.schedule_after(time::micros(rng.uniform_int(1, 50)),
                         [&chain, depth] { chain(depth - 1); });
    };
    chain(200);
    for (int i = 0; i < 100; ++i)
      sim.schedule_at(time::micros(rng.uniform_int(0, 5000)), [] {});
    sim.run();
    const auto digest = sim.event_digest();
    if (rec != nullptr) sim.set_tracer(nullptr);
    return std::pair(digest, sim.processed_events());
  };

  TraceRecorder rec;
  rec.set_enabled(true);
  const auto bare = run_workload(nullptr);
  const auto traced = run_workload(&rec);
  EXPECT_EQ(bare.first, traced.first);
  EXPECT_EQ(bare.second, traced.second);
  EXPECT_EQ(rec.total_events() + rec.total_dropped(), traced.second);
}
#endif  // W11_OBS

// ----------------------------------------------------------------- Metrics

TEST(Metrics, CountersSumAcrossLanesAndWorkerCounts) {
  auto json_at = [](int workers) {
    MetricsRegistry reg;
    reg.set_enabled(true);
    const obs::Counter items = reg.counter("work.items");
    const obs::Histogram sizes = reg.histogram("work.size", {1, 2, 4, 8});
    exec::TaskPool pool(workers);
    pool.parallel_for(1000, [&](std::size_t i, int) {
      items.add(1);
      sizes.observe(static_cast<double>(i % 10));
    });
    EXPECT_EQ(reg.counter_value(items), 1000u);
    return obs::metrics_json_string(reg);
  };
  const std::string serial = json_at(1);
  const std::string threaded = json_at(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, threaded);
}

TEST(Metrics, DeclaredButNeverHitMetricsSnapshotAtZero) {
  // Absent-vs-zero: a metric the SLO sheet reads must be present (at zero)
  // in every snapshot even when its code path never ran this interval —
  // otherwise a quiet poll is indistinguishable from a never-registered
  // name and rate SLIs over it are undefined. declare_* is the eager
  // registration the lazy W11_COUNT/W11_HISTOGRAM macros can't provide.
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.declare_counter("quiet.counter");
  reg.declare_gauge("quiet.gauge");
  reg.declare_histogram("quiet.hist");
  const obs::Counter hot = reg.counter("hot.counter");
  hot.add(3);
  const auto snap = reg.snapshot();
  auto value_of = [&](const std::string& name) -> const double* {
    for (const auto& s : snap)
      if (s.name == name) return &s.value;
    return nullptr;
  };
  ASSERT_NE(value_of("quiet.counter"), nullptr);
  EXPECT_EQ(*value_of("quiet.counter"), 0.0);
  ASSERT_NE(value_of("quiet.gauge"), nullptr);
  EXPECT_EQ(*value_of("quiet.gauge"), 0.0);
  ASSERT_NE(value_of("quiet.hist.count"), nullptr);
  EXPECT_EQ(*value_of("quiet.hist.count"), 0.0);
  EXPECT_EQ(*value_of("hot.counter"), 3.0);
  // The JSON dump carries them too (same snapshot underneath).
  const std::string json = obs::metrics_json_string(reg);
  EXPECT_NE(json.find("\"quiet.counter\":0"), std::string::npos);
  // Declaring again is idempotent: same handle slot, no duplicate rows.
  reg.declare_counter("quiet.counter");
  EXPECT_EQ(reg.snapshot().size(), snap.size());
}

TEST(Metrics, GaugeLatestSetWins) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  const obs::Gauge g = reg.gauge("queue.depth");
  g.set(1.0);
  g.set(2.5);
  g.set(-3.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value(g), -3.0);
}

TEST(Metrics, HistogramViewCountsBucketsAndBounds) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  const obs::Histogram h = reg.histogram("lat", {1, 2, 4, 8});
  for (double v : {0.5, 1.5, 3.0, 6.0, 6.0}) h.observe(v);
  const auto view = reg.histogram_view(h);
  EXPECT_EQ(view.count, 5u);
  EXPECT_DOUBLE_EQ(view.sum, 17.0);
  EXPECT_DOUBLE_EQ(view.min, 0.5);
  EXPECT_DOUBLE_EQ(view.max, 6.0);
  ASSERT_EQ(view.counts.size(), 5u);  // 4 bounds + overflow
  EXPECT_EQ(view.counts[0], 1u);
  EXPECT_EQ(view.counts[1], 1u);
  EXPECT_EQ(view.counts[2], 1u);
  EXPECT_EQ(view.counts[3], 2u);
  EXPECT_EQ(view.counts[4], 0u);
  // Quantiles are interpolated estimates: monotone and inside [min, max].
  const double p25 = view.quantile(0.25);
  const double p50 = view.quantile(0.50);
  const double p95 = view.quantile(0.95);
  EXPECT_LE(view.min, p25);
  EXPECT_LE(p25, p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, view.max);
}

TEST(Metrics, RegistrationIsIdempotentAndKindChecked) {
  MetricsRegistry reg;
  const obs::Counter a = reg.counter("dup.name");
  const obs::Counter b = reg.counter("dup.name");
  EXPECT_EQ(reg.metric_count(), 1u);
  reg.set_enabled(true);
  a.add(2);
  b.add(3);
  EXPECT_EQ(reg.counter_value(a), 5u) << "same name must alias one slot";
  EXPECT_THROW((void)reg.gauge("dup.name"), std::logic_error);
  EXPECT_THROW((void)reg.histogram("dup.name"), std::logic_error);
}

TEST(Metrics, SnapshotExpandsHistogramsInRegistrationOrder) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  const obs::Counter c = reg.counter("c");
  const obs::Histogram h = reg.histogram("h", {10});
  const obs::Gauge g = reg.gauge("g");
  c.add(4);
  h.observe(5.0);
  g.set(1.25);
  const auto samples = reg.snapshot();
  std::vector<std::string> names;
  for (const auto& s : samples) names.push_back(s.name);
  const std::vector<std::string> want = {"c",     "h.count", "h.sum",
                                         "h.mean", "h.p50",  "h.p95",
                                         "h.max",  "g"};
  EXPECT_EQ(names, want);
  EXPECT_DOUBLE_EQ(samples[0].value, 4.0);
  EXPECT_DOUBLE_EQ(samples[1].value, 1.0);
  EXPECT_DOUBLE_EQ(samples[2].value, 5.0);
  EXPECT_DOUBLE_EQ(samples.back().value, 1.25);
}

TEST(Metrics, ResetValuesKeepsRegistrations) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  const obs::Counter c = reg.counter("c");
  c.add(7);
  reg.reset_values();
  EXPECT_EQ(reg.metric_count(), 1u);
  EXPECT_EQ(reg.counter_value(c), 0u);
  c.add(1);
  EXPECT_EQ(reg.counter_value(c), 1u);
}

#if W11_OBS
TEST(Metrics, MacroGateRespectsRuntimeToggle) {
  MetricsRegistry& reg = obs::metrics();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(false);
  const std::size_t before = reg.metric_count();
  W11_COUNT("test.macro.gate");  // disabled: must not even register
  EXPECT_EQ(reg.metric_count(), before);

  reg.set_enabled(true);
  W11_COUNT("test.macro.gate");
  W11_COUNT_N("test.macro.gate", 4);
  EXPECT_EQ(reg.counter_value(reg.counter("test.macro.gate")), 5u);
  reg.set_enabled(was_enabled);
}

TEST(ObsEnv, EnableFromEnvHonorsW11Trace) {
  const bool tracer_was = obs::tracer().enabled();
  const bool metrics_was = obs::metrics().enabled();

  ::setenv("W11_TRACE", "0", 1);
  EXPECT_FALSE(obs::enable_from_env());
  ::setenv("W11_TRACE", "1", 1);
  EXPECT_TRUE(obs::enable_from_env());
  EXPECT_TRUE(obs::tracer().enabled());
  EXPECT_TRUE(obs::metrics().enabled());
  ::unsetenv("W11_TRACE");
  EXPECT_FALSE(obs::enable_from_env());

  ::setenv("W11_TRACE_OUT", "/tmp/custom.json", 1);
  EXPECT_STREQ(obs::trace_out_path("default.json"), "/tmp/custom.json");
  ::unsetenv("W11_TRACE_OUT");
  EXPECT_STREQ(obs::trace_out_path("default.json"), "default.json");

  obs::tracer().set_enabled(tracer_was);
  obs::tracer().clear();
  obs::metrics().set_enabled(metrics_was);
}
#endif  // W11_OBS

// ---------------------------------------------------------------- Bridge

TEST(TelemetryBridge, SnapshotLandsAsLittleTableRows) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  const obs::Counter c = reg.counter("acks");
  const obs::Gauge g = reg.gauge("depth");
  c.add(5);
  g.set(2.5);

  telemetry::LittleTable table = obs::make_metrics_table();
  const auto names = obs::snapshot_into(reg, table, time::seconds(1));
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "acks");
  EXPECT_EQ(names[1], "depth");
  EXPECT_EQ(table.row_count(), 2u);
  const auto rows = table.query(Time{0}, time::seconds(2));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].values[0], 5.0);
  EXPECT_DOUBLE_EQ(rows[1].values[0], 2.5);
}

// ------------------------------------------------------------ Planner audit

std::vector<ApScan> audit_scans(int n_aps, std::uint64_t seed) {
  workload::CampusConfig cc;
  cc.n_aps = n_aps;
  cc.buildings = std::max(2, n_aps / 12);
  cc.seed = seed;
  auto net = workload::make_campus(cc);
  Rng rng(seed ^ 0x5eedULL);
  workload::randomize_channels(*net, ChannelWidth::MHz40, rng);
  return net->scan();
}

TEST(PlanAuditTest, AttachingAuditDoesNotPerturbThePlan) {
  const auto scans = audit_scans(40, 17);
  ChannelPlan plan;
  for (const ApScan& s : scans) plan[s.id] = s.current;
  turboca::Params p;
  p.runs_min = 1;
  p.runs_max = 3;

  turboca::TurboCA bare(p, Rng(5));
  const auto without = bare.run(scans, plan, 1);

  turboca::TurboCA audited(p, Rng(5));
  PlanAudit audit;
  audited.set_audit(&audit);
  const auto with = audited.run(scans, plan, 1);

  EXPECT_TRUE(without.plan == with.plan);
  EXPECT_EQ(without.improved, with.improved);
  EXPECT_DOUBLE_EQ(without.netp_log, with.netp_log);

  ASSERT_FALSE(audit.rounds().empty());
  ASSERT_FALSE(audit.picks().empty());
  std::uint32_t round_picks = 0;
  for (const auto& r : audit.rounds()) {
    EXPECT_EQ(r.hop_limit, 1);
    round_picks += r.picks;
  }
  EXPECT_EQ(round_picks, audit.picks().size() + audit.dropped_picks());

  // Every switch must come with the term breakdown that explains it.
  bool saw_switch = false;
  for (const auto& pk : audit.picks()) {
    EXPECT_FALSE(pk.terms_to.empty());
    if (pk.switched) {
      saw_switch = true;
      EXPECT_NE(pk.from, pk.to);
      EXPECT_FALSE(pk.terms_from.empty());
    }
  }
  EXPECT_TRUE(saw_switch);

  std::ostringstream table;
  audit.write_table(table, /*switches_only=*/true);
  EXPECT_NE(table.str().find("planner decision audit"), std::string::npos);
  std::ostringstream jsonl;
  audit.write_jsonl(jsonl);
  EXPECT_NE(jsonl.str().find("\"type\":\"round\""), std::string::npos);
  EXPECT_NE(jsonl.str().find("\"type\":\"pick\""), std::string::npos);
}

TEST(PlanAuditTest, AuditRecordsAreWorkerCountInvariant) {
  const auto scans = audit_scans(60, 29);
  ChannelPlan plan;
  for (const ApScan& s : scans) plan[s.id] = s.current;
  turboca::Params p;
  p.runs_min = 1;
  p.runs_max = 2;

  auto jsonl_at = [&](int workers) {
    exec::TaskPool pool(workers);
    turboca::TurboCA tca(p, Rng(13));
    tca.set_pool(&pool);
    PlanAudit audit;
    tca.set_audit(&audit);
    (void)tca.run(scans, plan, 0);
    std::ostringstream os;
    audit.write_jsonl(os);
    return os.str();
  };

  const std::string serial = jsonl_at(1);
  const std::string threaded = jsonl_at(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, threaded);
}

TEST(PlanAuditTest, PickCapDropsDetailButKeepsCounting) {
  PlanAudit audit(/*max_picks=*/2);
  for (std::uint32_t i = 0; i < 5; ++i) {
    obs::PickRecord r;
    r.pick = i;
    audit.add_pick(std::move(r));
  }
  EXPECT_EQ(audit.picks().size(), 2u);
  EXPECT_EQ(audit.dropped_picks(), 3u);
}

}  // namespace
}  // namespace w11
