// Unit tests for phy/: channelization, VHT MCS table, propagation.

#include <gtest/gtest.h>

#include "phy/channel.hpp"
#include "phy/mcs.hpp"
#include "phy/propagation.hpp"

namespace w11 {
namespace {

// ----------------------------------------------------------- Channels --
// The paper (§4.1.1) cites the FCC allocation: twenty-five 20 MHz, twelve
// 40 MHz, six 80 MHz and two 160 MHz channels at 5 GHz; three
// non-overlapping at 2.4 GHz.

TEST(Channels, UsCatalogSizesMatchFccAllocation) {
  EXPECT_EQ(channels::us_catalog(Band::G5, ChannelWidth::MHz20).size(), 25u);
  EXPECT_EQ(channels::us_catalog(Band::G5, ChannelWidth::MHz40).size(), 12u);
  EXPECT_EQ(channels::us_catalog(Band::G5, ChannelWidth::MHz80).size(), 6u);
  EXPECT_EQ(channels::us_catalog(Band::G5, ChannelWidth::MHz160).size(), 2u);
  EXPECT_EQ(channels::us_catalog(Band::G2_4, ChannelWidth::MHz20).size(), 3u);
  // No bonded channels at 2.4 GHz in this catalog.
  EXPECT_TRUE(channels::us_catalog(Band::G2_4, ChannelWidth::MHz40).empty());
}

// §4.5.2: without DFS certification only nine 20 MHz, four 40 MHz, two
// 80 MHz and zero 160 MHz channels remain.
TEST(Channels, NonDfsCountsMatchPaper) {
  auto count_non_dfs = [](ChannelWidth w) {
    int n = 0;
    for (const Channel& c : channels::us_catalog(Band::G5, w))
      if (!c.is_dfs()) ++n;
    return n;
  };
  EXPECT_EQ(count_non_dfs(ChannelWidth::MHz20), 9);
  EXPECT_EQ(count_non_dfs(ChannelWidth::MHz40), 4);
  EXPECT_EQ(count_non_dfs(ChannelWidth::MHz80), 2);
  EXPECT_EQ(count_non_dfs(ChannelWidth::MHz160), 0);
}

TEST(Channels, ComponentsOfBondedChannels) {
  EXPECT_EQ((Channel{Band::G5, 38, ChannelWidth::MHz40}.components()),
            (std::vector<int>{36, 40}));
  EXPECT_EQ((Channel{Band::G5, 42, ChannelWidth::MHz80}.components()),
            (std::vector<int>{36, 40, 44, 48}));
  EXPECT_EQ((Channel{Band::G5, 50, ChannelWidth::MHz160}.components()),
            (std::vector<int>{36, 40, 44, 48, 52, 56, 60, 64}));
  EXPECT_EQ((Channel{Band::G5, 36, ChannelWidth::MHz20}.components()),
            (std::vector<int>{36}));
}

TEST(Channels, CenterFrequencies) {
  EXPECT_DOUBLE_EQ((Channel{Band::G5, 36, ChannelWidth::MHz20}.center_mhz()), 5180.0);
  EXPECT_DOUBLE_EQ((Channel{Band::G5, 42, ChannelWidth::MHz80}.center_mhz()), 5210.0);
  EXPECT_DOUBLE_EQ((Channel{Band::G2_4, 1, ChannelWidth::MHz20}.center_mhz()), 2412.0);
  EXPECT_DOUBLE_EQ((Channel{Band::G2_4, 6, ChannelWidth::MHz20}.center_mhz()), 2437.0);
}

TEST(Channels, OverlapRules5GHz) {
  const Channel c36_20{Band::G5, 36, ChannelWidth::MHz20};
  const Channel c40_20{Band::G5, 40, ChannelWidth::MHz20};
  const Channel c42_80{Band::G5, 42, ChannelWidth::MHz80};
  const Channel c149_20{Band::G5, 149, ChannelWidth::MHz20};
  const Channel c155_80{Band::G5, 155, ChannelWidth::MHz80};

  EXPECT_FALSE(c36_20.overlaps(c40_20));  // adjacent 20s don't overlap
  EXPECT_TRUE(c42_80.overlaps(c36_20));   // bonded contains its components
  EXPECT_TRUE(c42_80.overlaps(c40_20));
  EXPECT_FALSE(c42_80.overlaps(c149_20));
  EXPECT_TRUE(c155_80.overlaps(c149_20));
  EXPECT_TRUE(c36_20.overlaps(c36_20));  // self
}

TEST(Channels, OverlapRules24GHz) {
  const Channel c1{Band::G2_4, 1, ChannelWidth::MHz20};
  const Channel c4{Band::G2_4, 4, ChannelWidth::MHz20};
  const Channel c6{Band::G2_4, 6, ChannelWidth::MHz20};
  EXPECT_TRUE(c1.overlaps(c4));   // 15 MHz apart, 20 MHz wide
  EXPECT_FALSE(c1.overlaps(c6));  // 25 MHz apart — the classic 1/6/11 split
}

TEST(Channels, NoCrossBandOverlap) {
  EXPECT_FALSE((Channel{Band::G2_4, 1, ChannelWidth::MHz20}.overlaps(
      Channel{Band::G5, 36, ChannelWidth::MHz20})));
}

TEST(Channels, DfsClassification) {
  EXPECT_FALSE((Channel{Band::G5, 36, ChannelWidth::MHz20}.is_dfs()));
  EXPECT_TRUE((Channel{Band::G5, 52, ChannelWidth::MHz20}.is_dfs()));
  EXPECT_TRUE((Channel{Band::G5, 100, ChannelWidth::MHz20}.is_dfs()));
  EXPECT_FALSE((Channel{Band::G5, 149, ChannelWidth::MHz20}.is_dfs()));
  // 160 MHz ch 50 spans 36-64, which includes DFS 52-64.
  EXPECT_TRUE((Channel{Band::G5, 50, ChannelWidth::MHz160}.is_dfs()));
  EXPECT_FALSE((Channel{Band::G2_4, 6, ChannelWidth::MHz20}.is_dfs()));
}

TEST(Channels, Primary20IsLowestComponent) {
  const Channel c{Band::G5, 42, ChannelWidth::MHz80};
  EXPECT_EQ(c.primary20(), (Channel{Band::G5, 36, ChannelWidth::MHz20}));
}

TEST(Channels, CandidateSetFiltersDfsAndWidth) {
  const auto no_dfs =
      channels::candidate_set(Band::G5, ChannelWidth::MHz80, false);
  for (const Channel& c : no_dfs) {
    EXPECT_FALSE(c.is_dfs());
    EXPECT_LE(c.width, ChannelWidth::MHz80);
  }
  EXPECT_EQ(no_dfs.size(), 9u + 4u + 2u);

  const auto with_dfs =
      channels::candidate_set(Band::G5, ChannelWidth::MHz40, true);
  EXPECT_EQ(with_dfs.size(), 25u + 12u);

  const auto g24 = channels::candidate_set(Band::G2_4, ChannelWidth::MHz80, true);
  EXPECT_EQ(g24.size(), 3u);
}

TEST(Channels, WidthsUpTo) {
  EXPECT_EQ(widths_up_to(ChannelWidth::MHz20).size(), 1u);
  EXPECT_EQ(widths_up_to(ChannelWidth::MHz160).size(), 4u);
  EXPECT_EQ(widths_up_to(ChannelWidth::MHz80).back(), ChannelWidth::MHz80);
}

// ---------------------------------------------------------------- MCS --

TEST(Mcs, KnownRatesMatchStandardTable) {
  // Spot values from the 802.11ac MCS tables.
  EXPECT_NEAR(mcs::rate({0, 1}, ChannelWidth::MHz20, false)->mbps(), 6.5, 0.05);
  EXPECT_NEAR(mcs::rate({0, 1}, ChannelWidth::MHz20, true)->mbps(), 7.2, 0.05);
  EXPECT_NEAR(mcs::rate({7, 1}, ChannelWidth::MHz40, false)->mbps(), 135.0, 0.5);
  EXPECT_NEAR(mcs::rate({9, 1}, ChannelWidth::MHz80, true)->mbps(), 433.3, 0.5);
  EXPECT_NEAR(mcs::rate({9, 2}, ChannelWidth::MHz80, true)->mbps(), 866.7, 0.5);
  EXPECT_NEAR(mcs::rate({9, 3}, ChannelWidth::MHz80, true)->mbps(), 1300.0, 0.5);
  EXPECT_NEAR(mcs::rate({9, 2}, ChannelWidth::MHz160, true)->mbps(), 1733.3, 0.7);
}

TEST(Mcs, StandardExclusions) {
  EXPECT_FALSE(mcs::valid({9, 1}, ChannelWidth::MHz20));
  EXPECT_FALSE(mcs::valid({9, 2}, ChannelWidth::MHz20));
  EXPECT_TRUE(mcs::valid({9, 3}, ChannelWidth::MHz20));  // the exception
  EXPECT_FALSE(mcs::valid({6, 3}, ChannelWidth::MHz80));
  EXPECT_FALSE(mcs::valid({9, 3}, ChannelWidth::MHz160));
  EXPECT_TRUE(mcs::valid({9, 3}, ChannelWidth::MHz80));
}

TEST(Mcs, InvalidIndicesRejected) {
  EXPECT_FALSE(mcs::valid({-1, 1}, ChannelWidth::MHz20));
  EXPECT_FALSE(mcs::valid({10, 1}, ChannelWidth::MHz20));
  EXPECT_FALSE(mcs::valid({0, 0}, ChannelWidth::MHz20));
  EXPECT_FALSE(mcs::valid({0, 5}, ChannelWidth::MHz20));
  EXPECT_EQ(mcs::rate({10, 1}, ChannelWidth::MHz20, true), std::nullopt);
}

TEST(Mcs, MinSnrMonotoneInMcsAndNss) {
  for (int m = 1; m <= 9; ++m)
    EXPECT_GT(mcs::min_snr({m, 1}), mcs::min_snr({m - 1, 1}));
  EXPECT_GT(mcs::min_snr({0, 2}), mcs::min_snr({0, 1}));
}

class McsSelectSweep : public ::testing::TestWithParam<ChannelWidth> {};

TEST_P(McsSelectSweep, SelectedRateMonotoneInSnr) {
  const ChannelWidth w = GetParam();
  double prev = 0.0;
  for (Db snr = 0.0; snr <= 45.0; snr += 1.0) {
    const auto pick = mcs::select(snr, w, 3);
    if (!pick) {
      EXPECT_DOUBLE_EQ(prev, 0.0) << "selection vanished after appearing";
      continue;
    }
    const double r = mcs::rate(*pick, w, true)->mbps();
    EXPECT_GE(r, prev) << "at snr=" << snr;
    prev = r;
  }
  EXPECT_GT(prev, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, McsSelectSweep,
                         ::testing::Values(ChannelWidth::MHz20,
                                           ChannelWidth::MHz40,
                                           ChannelWidth::MHz80,
                                           ChannelWidth::MHz160));

TEST(Mcs, SelectRespectsNssCap) {
  const auto pick = mcs::select(50.0, ChannelWidth::MHz80, 1);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->nss, 1);
}

TEST(Mcs, SelectBelowFloorReturnsNothing) {
  EXPECT_EQ(mcs::select(-10.0, ChannelWidth::MHz80, 3), std::nullopt);
}

TEST(Mcs, PerDecreasesWithSnr) {
  const McsIndex idx{5, 2};
  double prev = 1.0;
  for (Db snr = mcs::min_snr(idx) - 6; snr < mcs::min_snr(idx) + 10; snr += 1.0) {
    const double per = mcs::packet_error_rate(idx, snr, 1500);
    EXPECT_LE(per, prev + 1e-12);
    EXPECT_GE(per, 0.0);
    EXPECT_LE(per, 1.0);
    prev = per;
  }
  EXPECT_LT(prev, 0.01);  // plenty of margin -> tiny PER
}

TEST(Mcs, PerGrowsWithFrameLength) {
  const McsIndex idx{4, 1};
  const Db snr = mcs::min_snr(idx) + 1.0;
  EXPECT_LT(mcs::packet_error_rate(idx, snr, 100),
            mcs::packet_error_rate(idx, snr, 3000));
}

TEST(Mcs, MaxRateTakesPairwiseMinimum) {
  mcs::Capability ap{ChannelWidth::MHz80, 3, 9, true};
  mcs::Capability phone{ChannelWidth::MHz80, 1, 9, true};
  mcs::Capability laptop{ChannelWidth::MHz40, 2, 9, true};
  EXPECT_NEAR(mcs::max_rate(ap, phone).mbps(), 433.3, 0.5);
  EXPECT_NEAR(mcs::max_rate(ap, laptop).mbps(), 400.0, 0.5);
  // 11n-style cap: max_mcs 7 at 40 MHz, 2 streams -> 300 Mbps.
  mcs::Capability n_client{ChannelWidth::MHz40, 2, 7, true};
  EXPECT_NEAR(mcs::max_rate(ap, n_client).mbps(), 300.0, 0.5);
}

// --------------------------------------------------------- Propagation --

TEST(Propagation, PathLossGrowsWithDistance) {
  const PropagationModel prop;
  const Position a{0, 0};
  double prev = 0.0;
  for (double d : {1.0, 5.0, 20.0, 80.0}) {
    // Disable shadowing for a clean monotonicity check.
    PropagationModel p = prop;
    p.shadowing_sigma = 0.0;
    const double loss = p.path_loss(a, Position{d, 0}, Band::G5);
    EXPECT_GT(loss, prev);
    prev = loss;
  }
}

TEST(Propagation, FiveGhzLossExceeds24Ghz) {
  PropagationModel p;
  p.shadowing_sigma = 0.0;
  const Position a{0, 0}, b{30, 0};
  EXPECT_GT(p.path_loss(a, b, Band::G5), p.path_loss(a, b, Band::G2_4));
}

TEST(Propagation, NoiseFloorWidensWithChannel) {
  const PropagationModel p;
  EXPECT_DOUBLE_EQ(p.noise_floor(ChannelWidth::MHz20), -95.0);
  EXPECT_NEAR(p.noise_floor(ChannelWidth::MHz40), -92.0, 0.02);
  EXPECT_NEAR(p.noise_floor(ChannelWidth::MHz80), -89.0, 0.03);
  EXPECT_NEAR(p.noise_floor(ChannelWidth::MHz160), -86.0, 0.04);
}

TEST(Propagation, SnrIsRssiMinusNoise) {
  PropagationModel p;
  p.shadowing_sigma = 0.0;
  const Position a{0, 0}, b{10, 0};
  const double rssi = p.rssi(20.0, a, b, Band::G5);
  EXPECT_NEAR(p.snr(20.0, a, b, Band::G5, ChannelWidth::MHz20), rssi + 95.0,
              1e-9);
}

TEST(Propagation, ShadowingIsDeterministicAndSymmetric) {
  const PropagationModel p;
  const Position a{3.5, 7.25}, b{40.0, 12.0};
  EXPECT_DOUBLE_EQ(p.path_loss(a, b, Band::G5), p.path_loss(a, b, Band::G5));
  EXPECT_DOUBLE_EQ(p.path_loss(a, b, Band::G5), p.path_loss(b, a, Band::G5));
}

TEST(Propagation, ShadowingVariesAcrossLinks) {
  PropagationModel p;
  const Position a{0, 0};
  // Two links of identical distance should (almost surely) differ by the
  // shadowing term.
  const double l1 = p.path_loss(a, Position{30, 0}, Band::G5);
  const double l2 = p.path_loss(a, Position{0, 30}, Band::G5);
  EXPECT_NE(l1, l2);
}

TEST(Propagation, LossNeverBelowReference) {
  PropagationModel p;
  const Position a{0, 0}, b{0.01, 0};  // sub-metre clamps to 1 m
  EXPECT_GE(p.path_loss(a, b, Band::G5), p.ref_loss_5g);
}

TEST(Propagation, DistanceHelper) {
  EXPECT_DOUBLE_EQ(distance_m({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_m({1, 1}, {1, 1}), 0.0);
}

}  // namespace
}  // namespace w11
