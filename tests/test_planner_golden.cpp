// Golden determinism: the PlanContext/ScanIndex planner must reproduce the
// reference (pre-index) evaluator bit-for-bit — identical plans from
// identical seeds across campus sizes and hop limits — and its incremental
// ΔNetP bookkeeping must always agree with a from-scratch rescore.

#include <gtest/gtest.h>

#include <vector>

#include "core/turboca/plan_context.hpp"
#include "core/turboca/reference.hpp"
#include "core/turboca/turboca.hpp"
#include "exec/task_pool.hpp"
#include "flowsim/scan_index.hpp"
#include "workload/topology.hpp"

namespace w11 {
namespace {

using turboca::Params;
using turboca::PlanContext;
using turboca::PsiSet;
using turboca::ReferenceEvaluator;
using turboca::TurboCA;

std::vector<ApScan> campus_scans(int n_aps, std::uint64_t seed) {
  workload::CampusConfig cc;
  cc.n_aps = n_aps;
  cc.buildings = std::max(2, n_aps / 12);
  cc.seed = seed;
  auto net = workload::make_campus(cc);
  // Mixed starting channels so the planner has real work (and real
  // contention structure) instead of an all-on-36 greenfield.
  Rng rng(seed ^ 0x5eedULL);
  workload::randomize_channels(*net, ChannelWidth::MHz40, rng);
  return net->scan();
}

ChannelPlan current_plan(const std::vector<ApScan>& scans) {
  ChannelPlan plan;
  for (const ApScan& s : scans) plan[s.id] = s.current;
  return plan;
}

// Round count tuned per size so the reference path (full rescore per round,
// linear find_scan per neighbor) stays test-suite friendly.
Params golden_params(int n_aps) {
  Params p;
  p.runs_min = 1;
  p.runs_max = n_aps <= 40 ? 3 : (n_aps <= 120 ? 2 : 1);
  return p;
}

void expect_golden(int n_aps, std::uint64_t seed) {
  const std::vector<ApScan> scans = campus_scans(n_aps, seed);
  const ChannelPlan plan = current_plan(scans);
  const Params p = golden_params(n_aps);

  for (int hop = 0; hop <= 2; ++hop) {
    TurboCA indexed(p, Rng(seed + 100 * hop));
    ReferenceEvaluator reference(p, Rng(seed + 100 * hop));

    const TurboCA::RunResult fast = indexed.run(scans, plan, hop);
    const TurboCA::RunResult slow = reference.run(scans, plan, hop);

    EXPECT_TRUE(fast.plan == slow.plan)
        << "plan diverged: n=" << n_aps << " hop=" << hop;
    EXPECT_EQ(fast.improved, slow.improved) << "n=" << n_aps << " hop=" << hop;
    EXPECT_NEAR(fast.netp_log, slow.netp_log, 1e-9)
        << "n=" << n_aps << " hop=" << hop;
  }
}

TEST(PlannerGolden, Campus40MatchesReference) { expect_golden(40, 11); }
TEST(PlannerGolden, Campus120MatchesReference) { expect_golden(120, 23); }
TEST(PlannerGolden, Campus300MatchesReference) { expect_golden(300, 37); }

// A single NBO sweep (not just the improving-rounds envelope) must draw the
// same RNG sequence and emit the same proposal as the reference Algorithm 1.
TEST(PlannerGolden, SingleSweepMatchesReference) {
  const std::vector<ApScan> scans = campus_scans(60, 5);
  const ChannelPlan plan = current_plan(scans);
  for (int hop = 0; hop <= 2; ++hop) {
    TurboCA indexed({}, Rng(42 + hop));
    ReferenceEvaluator reference({}, Rng(42 + hop));
    EXPECT_TRUE(indexed.nbo(scans, plan, hop) ==
                reference.nbo(scans, plan, hop))
        << "hop=" << hop;
  }
}

// The parallel executor (speculative NBO batches + ACC candidate fan-out)
// must emit byte-identical plans at every worker count — and all of them
// must equal the reference evaluator's plan. This is the tentpole guarantee
// of DESIGN.md §10: worker count is a throughput knob, never a semantics
// knob.
TEST(PlannerGolden, WorkerCountNeverChangesThePlan) {
  const int n_aps = 150;
  const std::uint64_t seed = 77;
  const std::vector<ApScan> scans = campus_scans(n_aps, seed);
  const ChannelPlan plan = current_plan(scans);
  const Params p = golden_params(n_aps);

  for (int hop = 0; hop <= 2; ++hop) {
    ReferenceEvaluator reference(p, Rng(seed + 100 * hop));
    const TurboCA::RunResult want = reference.run(scans, plan, hop);

    for (int workers : {1, 2, 4, 8}) {
      exec::TaskPool pool(workers);
      TurboCA indexed(p, Rng(seed + 100 * hop));
      indexed.set_pool(&pool);
      const flowsim::ScanIndex index(scans, p.neighbor_rssi_floor, &pool);
      const TurboCA::RunResult got = indexed.run(index, plan, hop);

      EXPECT_TRUE(got.plan == want.plan)
          << "plan diverged: workers=" << workers << " hop=" << hop;
      EXPECT_EQ(got.improved, want.improved)
          << "workers=" << workers << " hop=" << hop;
      EXPECT_NEAR(got.netp_log, want.netp_log, 1e-9)
          << "workers=" << workers << " hop=" << hop;

      const TurboCA::SweepStats& st = indexed.sweep_stats();
      EXPECT_GT(st.picks, 0u);
      EXPECT_GE(st.picks, st.batches);
      if (workers > 1) {
        // The speculative executor must actually engage off the serial path.
        EXPECT_EQ(st.serial_sweeps, 0u) << "workers=" << workers;
        EXPECT_GT(st.max_batch, 1u) << "workers=" << workers;
      }
    }
  }
}

// Property: after ANY random single-AP move, the incrementally maintained
// NetP (dirty mover + dependents only) equals a full from-scratch recompute.
TEST(PlannerGolden, DeltaNetPMatchesFullRecompute) {
  const Params p;
  const flowsim::ScanIndex index(campus_scans(60, 3), p.neighbor_rssi_floor);
  PlanContext ctx(index, p, {});
  Rng rng(99);

  ASSERT_NEAR(ctx.net_p_log(),
              turboca::reference::net_p_log(p, index.scans(), ctx.snapshot()),
              1e-9);

  for (int move = 0; move < 120; ++move) {
    const std::size_t i = rng.index(index.size());
    const auto& cands = index.candidates(i);
    ctx.set(i, cands[rng.index(cands.size())]);
    const double incremental = ctx.net_p_log();
    const double full =
        turboca::reference::net_p_log(p, index.scans(), ctx.snapshot());
    ASSERT_NEAR(incremental, full, 1e-9) << "move " << move << " ap " << i;
  }
}

// Rolling back a round restores both the plan and the cached NetP terms.
TEST(PlannerGolden, RollbackRestoresPlanAndNetP) {
  const Params p;
  const flowsim::ScanIndex index(campus_scans(40, 13), p.neighbor_rssi_floor);
  PlanContext ctx(index, p, {});
  const ChannelPlan before_plan = ctx.snapshot();
  const double before_netp = ctx.net_p_log();

  Rng rng(7);
  ctx.begin_round();
  for (int move = 0; move < 25; ++move) {
    const std::size_t i = rng.index(index.size());
    const auto& cands = index.candidates(i);
    ctx.set(i, cands[rng.index(cands.size())]);
  }
  ctx.rollback_round();

  EXPECT_TRUE(ctx.snapshot() == before_plan);
  EXPECT_EQ(ctx.net_p_log(), before_netp);
}

}  // namespace
}  // namespace w11
