// Property-based and stress tests: invariants that must hold across
// randomized inputs, seeds and fault injections.

#include <gtest/gtest.h>

#include <map>

#include "core/turboca/turboca.hpp"
#include "mac/medium.hpp"
#include "net/tcp_receiver.hpp"
#include "net/tcp_sender.hpp"
#include "phy/channel.hpp"
#include "scenario/testbed.hpp"
#include "telemetry/littletable.hpp"

namespace w11 {
namespace {

// ------------------------------------------------ TCP integrity sweep ----

// A hostile network between sender and receiver: random loss, reordering
// (random extra delay), and duplication — TCP must still deliver the exact
// byte stream.
class TcpHostileSweep : public ::testing::TestWithParam<int> {};

TEST_P(TcpHostileSweep, ExactDeliveryDespiteLossReorderDuplication) {
  Simulator sim;
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;

  receiver = std::make_unique<TcpReceiver>(
      sim, FlowId{1}, TcpReceiver::Config{}, [&](TcpSegment ack) {
        if (rng.bernoulli(0.05)) return;  // ack loss
        const Time delay{rng.uniform_int(1'000'000, 20'000'000)};
        sim.schedule_after(delay, [&, ack] { sender->on_ack(ack); });
      });
  sender = std::make_unique<TcpSender>(
      sim, FlowId{1}, StationId{1}, TcpSender::Config{}, [&](TcpSegment seg) {
        if (rng.bernoulli(0.08)) return;  // data loss
        const int copies = rng.bernoulli(0.03) ? 2 : 1;  // duplication
        for (int c = 0; c < copies; ++c) {
          const Time delay{rng.uniform_int(1'000'000, 25'000'000)};  // reorder
          sim.schedule_after(delay, [&, seg] { receiver->on_data(seg); });
        }
      });

  constexpr std::uint64_t kTotal = 400'000;
  sender->start(Bytes{static_cast<std::int64_t>(kTotal)});
  sim.run_until(time::seconds(120));

  EXPECT_TRUE(sender->finished()) << "seed " << GetParam();
  EXPECT_EQ(receiver->bytes_delivered(), kTotal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpHostileSweep, ::testing::Range(1, 13));

// ------------------------------------------- medium airtime conservation --

class MediumConservation : public ::testing::TestWithParam<int> {};

namespace {
class CountingContender : public mac::Contender {
 public:
  CountingContender(mac::Medium& m, AccessCategory ac, Time frame, int credit)
      : medium_(m), ac_(ac), frame_(frame), credit_(credit) {}
  void arm() { medium_.set_backlogged(this, credit_ > 0); }
  mac::TxDescriptor begin_txop() override { return {frame_, 1}; }
  void end_txop(bool collided) override {
    if (!collided) --credit_;
    medium_.set_backlogged(this, credit_ > 0);
  }
  [[nodiscard]] AccessCategory access_category() const override { return ac_; }

 private:
  mac::Medium& medium_;
  AccessCategory ac_;
  Time frame_;
  int credit_;
};
}  // namespace

TEST_P(MediumConservation, AirtimeAccountingIsConsistent) {
  Simulator sim;
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  mac::Medium medium(sim, {}, Rng(static_cast<std::uint64_t>(GetParam()) + 1));
  std::vector<std::unique_ptr<CountingContender>> cs;
  const int n = static_cast<int>(rng.uniform_int(2, 12));
  for (int i = 0; i < n; ++i) {
    const auto ac = static_cast<AccessCategory>(rng.uniform_int(0, 3));
    cs.push_back(std::make_unique<CountingContender>(
        medium, ac, Time{rng.uniform_int(100'000, 3'000'000)},
        static_cast<int>(rng.uniform_int(5, 40))));
    medium.attach(cs.back().get());
  }
  for (auto& c : cs) c->arm();
  sim.run_until(time::seconds(30));

  // Busy time can never exceed wall-clock; per-contender airtime sums to at
  // least the busy time (collisions charge every participant) and within a
  // small factor of it.
  EXPECT_LE(medium.total_busy_time(), sim.now());
  Time summed{};
  for (auto& c : cs) summed += medium.airtime_of(c.get());
  EXPECT_GE(summed, medium.total_busy_time());
  EXPECT_LE(summed.ns(), 3 * medium.total_busy_time().ns());
  // Everything drained: no contender still backlogged => medium went idle.
  EXPECT_FALSE(medium.busy());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MediumConservation, ::testing::Range(1, 9));

// -------------------------------------------- FastACK invariants sweep ----

struct StressCase {
  std::uint64_t seed;
  double bad_hints;
  std::size_t wire_queue;
  std::int64_t rx_buffer_kb;
};

class FastAckStressSweep : public ::testing::TestWithParam<StressCase> {};

TEST_P(FastAckStressSweep, FlowsAdvanceAndInvariantsHold) {
  const StressCase& sc = GetParam();
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 5;
  cfg.duration = time::seconds(4);
  cfg.fastack = {true};
  cfg.seed = sc.seed;
  cfg.bad_hint_rate = sc.bad_hints;
  cfg.wire.queue_packets = sc.wire_queue;
  cfg.receiver.buffer = units::kilobytes(sc.rx_buffer_kb);
  scenario::Testbed tb(cfg);
  tb.run();

  for (int c = 0; c < 5; ++c) {
    const auto flow = FlowId{static_cast<std::uint32_t>(c)};
    const auto* fs = tb.agent(0)->flow_state(flow);
    ASSERT_NE(fs, nullptr);
    // Table 3 invariants.
    EXPECT_LE(fs->seq_tcp, fs->seq_fack);
    EXPECT_LE(fs->seq_fack, fs->seq_exp);
    EXPECT_LE(fs->seq_exp, fs->seq_high);
    // Cache only holds un-client-acked bytes.
    if (!fs->retx_cache.empty())
      EXPECT_GE(fs->retx_cache.begin()->second.seq_end(), fs->seq_tcp);
    // Every flow made real progress.
    const auto* rx = tb.client(0, c).receiver(flow);
    ASSERT_NE(rx, nullptr);
    EXPECT_GT(rx->bytes_delivered(), 200'000u)
        << "flow " << c << " seed " << sc.seed << " hints " << sc.bad_hints;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Stress, FastAckStressSweep,
    ::testing::Values(StressCase{1, 0.0, 2048, 1024},
                      StressCase{2, 0.02, 2048, 1024},
                      StressCase{3, 0.0, 96, 1024},
                      StressCase{4, 0.02, 96, 1024},
                      StressCase{5, 0.01, 2048, 256},
                      StressCase{6, 0.03, 256, 512},
                      StressCase{7, 0.05, 2048, 1024},
                      StressCase{8, 0.01, 128, 256}));

// ------------------------------------------------- LittleTable vs model ---

TEST(LittleTableProperty, MatchesReferenceModelUnderRandomOps) {
  Rng rng(42);
  telemetry::LittleTable table("fuzz", {"v"});
  std::multimap<std::int64_t, std::pair<std::uint32_t, double>> model;

  for (int op = 0; op < 5000; ++op) {
    const double r = rng.uniform();
    if (r < 0.7) {
      const auto at = rng.uniform_int(0, 10'000);
      const auto entity = static_cast<std::uint32_t>(rng.uniform_int(0, 5));
      const double v = rng.uniform(-100, 100);
      table.insert(entity, time::seconds(at), {v});
      model.emplace(at, std::pair{entity, v});
    } else if (r < 0.9) {
      const auto lo = rng.uniform_int(0, 9'000);
      const auto hi = lo + rng.uniform_int(0, 2'000);
      const auto rows = table.query(time::seconds(lo), time::seconds(hi));
      std::size_t expected = 0;
      double expected_sum = 0;
      for (auto it = model.lower_bound(lo); it != model.end() && it->first <= hi;
           ++it) {
        ++expected;
        expected_sum += it->second.second;
      }
      ASSERT_EQ(rows.size(), expected);
      if (expected > 0) {
        const double sum = table.aggregate_scalar(
            "v", telemetry::LittleTable::Agg::kSum, time::seconds(lo),
            time::seconds(hi));
        EXPECT_NEAR(sum, expected_sum, 1e-6);
      }
    } else {
      const auto cutoff = rng.uniform_int(0, 5'000);
      table.trim_before(time::seconds(cutoff));
      model.erase(model.begin(), model.lower_bound(cutoff));
      ASSERT_EQ(table.row_count(), model.size());
    }
  }
}

// --------------------------------------------------- channel algebra ------

TEST(ChannelProperty, OverlapIsSymmetricAndReflexive) {
  std::vector<Channel> all;
  for (auto w : {ChannelWidth::MHz20, ChannelWidth::MHz40, ChannelWidth::MHz80,
                 ChannelWidth::MHz160})
    for (const Channel& c : channels::us_catalog(Band::G5, w)) all.push_back(c);
  for (const Channel& c : channels::us_catalog(Band::G2_4, ChannelWidth::MHz20))
    all.push_back(c);

  for (const Channel& a : all) {
    EXPECT_TRUE(a.overlaps(a));
    for (const Channel& b : all) EXPECT_EQ(a.overlaps(b), b.overlaps(a));
  }
}

TEST(ChannelProperty, OverlapMatchesComponentIntersectionAt5GHz) {
  std::vector<Channel> all;
  for (auto w : {ChannelWidth::MHz20, ChannelWidth::MHz40, ChannelWidth::MHz80,
                 ChannelWidth::MHz160})
    for (const Channel& c : channels::us_catalog(Band::G5, w)) all.push_back(c);

  for (const Channel& a : all) {
    for (const Channel& b : all) {
      const auto ca = a.components();
      const auto cb = b.components();
      bool share = false;
      for (int x : ca)
        for (int y : cb) share |= x == y;
      EXPECT_EQ(a.overlaps(b), share)
          << a.to_string() << " vs " << b.to_string();
    }
  }
}

TEST(ChannelProperty, ComponentCountsMatchWidth) {
  for (auto [w, n] : std::vector<std::pair<ChannelWidth, std::size_t>>{
           {ChannelWidth::MHz20, 1},
           {ChannelWidth::MHz40, 2},
           {ChannelWidth::MHz80, 4},
           {ChannelWidth::MHz160, 8}}) {
    for (const Channel& c : channels::us_catalog(Band::G5, w))
      EXPECT_EQ(c.components().size(), n) << c.to_string();
  }
}

// ---------------------------------------------------- NodeP monotonicity --

class NodePMonotone : public ::testing::TestWithParam<int> {};

TEST_P(NodePMonotone, ExternalUtilizationNeverHelps) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  turboca::TurboCA tca({}, Rng(1));

  ApScan s;
  s.id = ApId{0};
  s.band = Band::G5;
  s.current = Channel{Band::G5, 36, ChannelWidth::MHz20};
  s.max_width = ChannelWidth::MHz80;
  s.has_clients = true;
  s.load_by_width[ChannelWidth::MHz80] = rng.uniform(0.5, 4.0);
  for (const Channel& c : channels::us_catalog(Band::G5, ChannelWidth::MHz20))
    s.quality[c.number] = 1.0;

  const auto cands = channels::candidate_set(Band::G5, ChannelWidth::MHz80, true);
  const Channel c = cands[rng.index(cands.size())];
  const ChannelPlan plan{{s.id, s.current}};

  double prev = tca.node_p_log(s, c, {s}, plan, {});
  for (double u = 0.1; u <= 0.9; u += 0.1) {
    for (int comp : c.components()) {
      s.external_util[comp] = u;
      s.quality[comp] = 1.0 - 0.6 * u;
    }
    const double now = tca.node_p_log(s, c, {s}, plan, {});
    EXPECT_LE(now, prev + 1e-9) << "util " << u << " on " << c.to_string();
    prev = now;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NodePMonotone, ::testing::Range(1, 11));

}  // namespace
}  // namespace w11
