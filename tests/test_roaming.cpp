// Roaming tests (§5.5.4): clients moving between APs mid-flow, with and
// without FastACK state transfer.

#include <gtest/gtest.h>

#include "scenario/testbed.hpp"

namespace w11 {
namespace {

TEST(Roaming, BaselineFlowSurvivesRoam) {
  scenario::TestbedConfig cfg;
  cfg.n_aps = 2;
  cfg.n_clients_per_ap = 2;
  cfg.duration = time::seconds(4);
  cfg.warmup = time::millis(1);
  cfg.seed = 7;
  scenario::Testbed tb(cfg);

  tb.simulator().schedule_at(time::seconds(2),
                             [&] { tb.roam(/*from=*/0, /*client=*/0, /*to=*/1); });
  std::uint64_t bytes_at_roam = 0;
  tb.simulator().schedule_at(time::seconds(2), [&] {
    bytes_at_roam = tb.client(0, 0).bytes_delivered();
  });
  tb.run();

  // The roamed client kept receiving after the move (TCP recovers the
  // frames dropped from the roam-from AP's queue end to end).
  EXPECT_GT(tb.client(0, 0).bytes_delivered(), bytes_at_roam + 500'000u);
  const auto* rx = tb.client(0, 0).receiver(FlowId{0});
  ASSERT_NE(rx, nullptr);
  EXPECT_EQ(rx->stats().window_overflow_drops, 0u);
}

TEST(Roaming, FastAckStateTransfersToRoamToAp) {
  scenario::TestbedConfig cfg;
  cfg.n_aps = 2;
  cfg.n_clients_per_ap = 2;
  cfg.duration = time::seconds(4);
  cfg.warmup = time::millis(1);
  cfg.fastack = {true, true};
  cfg.seed = 9;
  scenario::Testbed tb(cfg);

  tb.simulator().schedule_at(time::seconds(2), [&] {
    ASSERT_NE(tb.agent(0)->flow_state(FlowId{0}), nullptr);
    const std::uint64_t fack_before = tb.agent(0)->flow_state(FlowId{0})->seq_fack;
    tb.roam(0, 0, 1);
    // State left AP0's agent and arrived at AP1's, cache and sequence
    // cursors intact.
    EXPECT_EQ(tb.agent(0)->flow_state(FlowId{0}), nullptr);
    const auto* moved = tb.agent(1)->flow_state(FlowId{0});
    ASSERT_NE(moved, nullptr);
    EXPECT_EQ(moved->seq_fack, fack_before);
    EXPECT_TRUE(moved->q_seq.empty());  // air-pending ranges do not travel
  });
  tb.run();

  // The flow kept running on the new AP, still fast-acked.
  const auto* rx = tb.client(0, 0).receiver(FlowId{0});
  ASSERT_NE(rx, nullptr);
  EXPECT_GT(rx->bytes_delivered(), 2'000'000u);
  EXPECT_GT(tb.agent(1)->stats().fast_acks_sent, 0u);
}

TEST(Roaming, RoamedFlowStillReachesCwndCap) {
  scenario::TestbedConfig cfg;
  cfg.n_aps = 2;
  cfg.n_clients_per_ap = 1;
  cfg.duration = time::seconds(5);
  cfg.warmup = time::millis(1);
  cfg.fastack = {true, true};
  cfg.seed = 13;
  scenario::Testbed tb(cfg);
  tb.simulator().schedule_at(time::seconds(2), [&] { tb.roam(0, 0, 1); });
  tb.run();
  // Post-roam the window regrows in congestion avoidance; 3 s is enough to
  // be healthy again, not to re-pin at the 770 cap.
  EXPECT_GT(tb.sender(0, 0).cwnd_segments(), 100.0);
  EXPECT_GT(tb.client(0, 0).bytes_delivered(), 2'000'000u);
}

TEST(Roaming, DisassociateDropsQueuedFramesSafely) {
  // Direct AP-level check: disassociation with a deep queue must not break
  // subsequent TXOPs for other clients.
  scenario::TestbedConfig cfg;
  cfg.n_aps = 2;
  cfg.n_clients_per_ap = 3;
  cfg.duration = time::seconds(3);
  cfg.warmup = time::millis(1);
  cfg.seed = 21;
  scenario::Testbed tb(cfg);
  tb.simulator().schedule_at(time::millis(500), [&] { tb.roam(0, 1, 1); });
  tb.run();
  // Remaining AP0 clients are unaffected and keep flowing.
  EXPECT_GT(tb.client(0, 0).bytes_delivered(), 500'000u);
  EXPECT_GT(tb.client(0, 2).bytes_delivered(), 500'000u);
  // The roamer keeps flowing on AP1.
  EXPECT_GT(tb.client(0, 1).bytes_delivered(), 500'000u);
}

TEST(Roaming, RoamBackAndForth) {
  scenario::TestbedConfig cfg;
  cfg.n_aps = 2;
  cfg.n_clients_per_ap = 1;
  cfg.duration = time::seconds(6);
  cfg.warmup = time::millis(1);
  cfg.fastack = {true, true};
  cfg.seed = 31;
  scenario::Testbed tb(cfg);
  tb.simulator().schedule_at(time::seconds(2), [&] { tb.roam(0, 0, 1); });
  tb.simulator().schedule_at(time::seconds(4), [&] { tb.roam(0, 0, 0); });
  tb.run();
  const auto* rx = tb.client(0, 0).receiver(FlowId{0});
  ASSERT_NE(rx, nullptr);
  EXPECT_GT(rx->bytes_delivered(), 3'000'000u);
  // State ended up back at AP0.
  EXPECT_NE(tb.agent(0)->flow_state(FlowId{0}), nullptr);
  EXPECT_EQ(tb.agent(1)->flow_state(FlowId{0}), nullptr);
}

TEST(Roaming, StateTransferUnderMpduLossNeverStallsSender) {
  // Roam mid-transfer while 802.11 delivery hints lie (§5.7 fn. 15): the
  // fast-ACK point can run ahead of what the client actually holds, so the
  // transferred state must keep serving client dup-ACKs from the travelling
  // retransmission cache. The sender must never deadlock.
  scenario::TestbedConfig cfg;
  cfg.n_aps = 2;
  cfg.n_clients_per_ap = 1;
  cfg.duration = time::seconds(6);
  cfg.warmup = time::millis(1);
  cfg.fastack = {true, true};
  cfg.bad_hint_rate = 0.05;
  cfg.seed = 17;
  scenario::Testbed tb(cfg);

  tb.simulator().schedule_at(time::seconds(2), [&] { tb.roam(0, 0, 1); });
  tb.simulator().schedule_at(time::seconds(4), [&] { tb.roam(0, 0, 0); });
  std::uint64_t at_first_roam = 0;
  tb.simulator().schedule_at(time::seconds(2), [&] {
    at_first_roam = tb.client(0, 0).bytes_delivered();
  });
  std::uint64_t at_final_second = 0;
  tb.simulator().schedule_at(time::seconds(5), [&] {
    at_final_second = tb.client(0, 0).bytes_delivered();
  });
  tb.run();

  // Progress continued across both transfers despite the lying hints.
  EXPECT_GT(tb.client(0, 0).bytes_delivered(), at_first_roam + 500'000u);
  // ... and was still flowing in the last second — the flow is in the
  // stall-heal regime, not wedged. (Under *sustained* bad hints the
  // rewritten window legitimately hovers near zero: it is the §5.5.2
  // flow-control signal that the client is behind while the AP repairs
  // holes from its cache, so asserting a reopened window here would test
  // the wrong invariant.)
  EXPECT_GT(tb.client(0, 0).bytes_delivered(), at_final_second + 100'000u);
  const auto& snd = tb.sender(0, 0);
  EXPECT_GT(snd.snd_una(), at_first_roam);
  // The state that healed the bad hints travelled: somebody served local
  // retransmissions, and the flow was never dropped to bypass.
  const auto* s = tb.agent(0)->flow_state(FlowId{0});
  ASSERT_NE(s, nullptr);
  EXPECT_FALSE(s->bypassed);
  EXPECT_GT(tb.agent(0)->stats().local_retransmits +
                tb.agent(1)->stats().local_retransmits,
            0u);
}

}  // namespace
}  // namespace w11
