// src/ctrl/ rollout pipeline tests: the versioned plan store, the lossy
// control channel, the retry/backoff applier, the staged coordinator with
// auto-revert, and the end-to-end chaos soak whose one invariant is "no AP
// is ever left half-applied" — plus byte-identical rollout audits at any
// worker count.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "ctrl/applier.hpp"
#include "ctrl/control_channel.hpp"
#include "ctrl/plan_store.hpp"
#include "ctrl/rollout.hpp"
#include "exec/task_pool.hpp"
#include "fault/fault_plan.hpp"
#include "scenario/rollout_harness.hpp"
#include "sim/simulator.hpp"

namespace w11 {
namespace {

const Channel ch36{Band::G5, 36, ChannelWidth::MHz20};
const Channel ch40{Band::G5, 40, ChannelWidth::MHz20};
const Channel ch44{Band::G5, 44, ChannelWidth::MHz20};
const Channel ch149{Band::G5, 149, ChannelWidth::MHz20};

ChannelPlan plan_all(int n, const Channel& c) {
  ChannelPlan p;
  for (int i = 0; i < n; ++i) p[ApId{static_cast<std::uint32_t>(i)}] = c;
  return p;
}

// ------------------------------------------------------------ PlanStore --

TEST(PlanStore, CommitIsMonotoneAndQueryable) {
  ctrl::PlanStore store;
  EXPECT_EQ(store.last_known_good(), nullptr);
  const auto v1 = store.commit(plan_all(2, ch36), -1.5, time::seconds(1));
  const auto v2 = store.commit(plan_all(2, ch40), -1.2, time::seconds(2));
  EXPECT_EQ(v1, 1u);
  EXPECT_EQ(v2, 2u);
  EXPECT_EQ(store.latest_version(), 2u);
  ASSERT_NE(store.get(v1), nullptr);
  EXPECT_EQ(store.get(v1)->plan.at(ApId{0}), ch36);
  EXPECT_DOUBLE_EQ(store.get(v2)->netp_log, -1.2);
}

TEST(PlanStore, LastKnownGoodSurvivesHistoryChurn) {
  ctrl::PlanStore store(/*max_history=*/4);
  const auto v1 = store.commit(plan_all(1, ch36), 0.0, Time{});
  store.mark_good(v1);
  for (int i = 0; i < 20; ++i)
    store.commit(plan_all(1, ch40), 0.0, Time{});
  // Twenty candidates churned past a window of four; the good version is
  // pinned while everything else rolled over.
  ASSERT_NE(store.last_known_good(), nullptr);
  EXPECT_EQ(store.last_known_good()->version, v1);
  EXPECT_EQ(store.last_known_good()->plan.at(ApId{0}), ch36);
  EXPECT_LE(store.size(), 4u);
  // The oldest non-good versions are gone.
  EXPECT_EQ(store.get(2), nullptr);
}

TEST(PlanStore, MarkGoodMovesThePin) {
  ctrl::PlanStore store(/*max_history=*/4);
  const auto v1 = store.commit(plan_all(1, ch36), 0.0, Time{});
  store.mark_good(v1);
  const auto v2 = store.commit(plan_all(1, ch40), 0.0, Time{});
  store.mark_good(v2);
  EXPECT_EQ(store.last_known_good_version(), v2);
  for (int i = 0; i < 10; ++i) store.commit(plan_all(1, ch44), 0.0, Time{});
  EXPECT_EQ(store.get(v1), nullptr);  // the old good is no longer pinned
  ASSERT_NE(store.last_known_good(), nullptr);
  EXPECT_EQ(store.last_known_good()->version, v2);
}

// ------------------------------------------------------- ControlChannel --

TEST(ControlChannel, DeliversAfterFixedDelay) {
  Simulator sim;
  ctrl::ControlChannel::Config cc;
  cc.loss = 0.0;
  cc.delay = time::millis(20);
  cc.jitter = Time{0};
  ctrl::ControlChannel chan(sim, cc, /*seed=*/1, /*n_aps=*/2);
  Time delivered_at{-1};
  EXPECT_TRUE(chan.send(0, [&] { delivered_at = sim.now(); }));
  sim.run();
  EXPECT_EQ(delivered_at, time::millis(20));
  EXPECT_EQ(chan.stats().delivered, 1u);
}

TEST(ControlChannel, LossIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    ctrl::ControlChannel::Config cc;
    cc.loss = 0.5;
    ctrl::ControlChannel chan(sim, cc, seed, 4);
    std::vector<bool> fate;
    for (int i = 0; i < 64; ++i)
      fate.push_back(chan.send(static_cast<std::uint32_t>(i % 4), [] {}));
    return fate;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // and the draws actually depend on the seed
}

TEST(ControlChannel, OfflineDropsButInFlightStillDelivers) {
  Simulator sim;
  ctrl::ControlChannel::Config cc;
  cc.loss = 0.0;
  cc.delay = time::millis(20);
  cc.jitter = Time{0};
  ctrl::ControlChannel chan(sim, cc, 1, 1);
  int delivered = 0;
  EXPECT_TRUE(chan.send(0, [&] { ++delivered; }));  // on the wire
  chan.set_online(0, false);
  EXPECT_FALSE(chan.send(0, [&] { ++delivered; }));  // dropped at the AP
  sim.run();
  EXPECT_EQ(delivered, 1);  // going offline is not retroactive
  EXPECT_EQ(chan.stats().dropped_offline, 1u);
}

TEST(ControlChannel, ReconnectListenerFiresOnUpTransitionOnly) {
  Simulator sim;
  ctrl::ControlChannel chan(sim, {}, 1, 2);
  std::vector<std::uint32_t> kicks;
  chan.set_reconnect_listener([&](std::uint32_t ap) { kicks.push_back(ap); });
  chan.set_online(1, true);   // already up: no transition
  chan.set_online(1, false);
  chan.set_online(1, false);  // repeated down: no transition
  chan.set_online(1, true);
  EXPECT_EQ(kicks, (std::vector<std::uint32_t>{1}));
}

// -------------------------------------------------------------- backoff --

TEST(Backoff, DelayGrowsGeometricallyAndCaps) {
  ctrl::Backoff b;
  b.initial = time::millis(200);
  b.multiplier = 2.0;
  b.cap = time::seconds(1);
  b.jitter_frac = 0.0;
  const exec::ShardRng shards(1);
  EXPECT_EQ(ctrl::backoff_delay(b, 0, 2, shards), time::millis(200));
  EXPECT_EQ(ctrl::backoff_delay(b, 0, 3, shards), time::millis(400));
  EXPECT_EQ(ctrl::backoff_delay(b, 0, 4, shards), time::millis(800));
  EXPECT_EQ(ctrl::backoff_delay(b, 0, 5, shards), time::seconds(1));  // cap
  EXPECT_EQ(ctrl::backoff_delay(b, 0, 20, shards), time::seconds(1));
}

TEST(Backoff, JitterStaysInBandAndIsDeterministic) {
  ctrl::Backoff b;
  b.initial = time::millis(100);
  b.jitter_frac = 0.25;
  const exec::ShardRng shards(42);
  for (std::uint32_t ap = 0; ap < 16; ++ap) {
    for (int attempt = 2; attempt < 8; ++attempt) {
      const Time d = ctrl::backoff_delay(b, ap, attempt, shards);
      ctrl::Backoff nojit = b;
      nojit.jitter_frac = 0.0;
      const Time base = ctrl::backoff_delay(nojit, ap, attempt, shards);
      EXPECT_GE(d.ns(), static_cast<std::int64_t>(0.75 * base.ns()) - 1);
      EXPECT_LE(d.ns(), static_cast<std::int64_t>(1.25 * base.ns()) + 1);
      EXPECT_EQ(d, ctrl::backoff_delay(b, ap, attempt, shards));
    }
  }
  // Distinct APs draw from distinct streams.
  EXPECT_NE(ctrl::backoff_delay(b, 1, 2, shards),
            ctrl::backoff_delay(b, 2, 2, shards));
}

// -------------------------------------------------------------- applier --

struct ApplierRig {
  Simulator sim;
  ctrl::ControlChannel chan;
  std::vector<Channel> current;
  ctrl::PlanApplier applier;
  int done_fired = 0;

  explicit ApplierRig(int n_aps, ctrl::ControlChannel::Config cc = lossless(),
                      ctrl::Backoff b = {})
      : chan(sim, cc, /*seed=*/5, n_aps),
        current(static_cast<std::size_t>(n_aps), ch36),
        applier(sim, chan, b,
                ctrl::PlanApplier::Hooks{[this](std::uint32_t ap,
                                                const Channel& c) {
                  if (current[ap] == c) return false;
                  current[ap] = c;
                  return true;
                }},
                /*seed=*/9) {}

  static ctrl::ControlChannel::Config lossless() {
    ctrl::ControlChannel::Config cc;
    cc.loss = 0.0;
    cc.delay = time::millis(20);
    cc.jitter = Time{0};
    return cc;
  }

  std::vector<ctrl::PlanApplier::Target> targets(const Channel& c) {
    std::vector<ctrl::PlanApplier::Target> t;
    for (std::uint32_t ap = 0; ap < current.size(); ++ap) t.push_back({ap, c});
    return t;
  }
};

TEST(PlanApplier, AppliesWholeWaveAndFiresOnDoneOnce) {
  ApplierRig rig(3);
  rig.applier.begin_wave(rig.targets(ch40), /*version=*/2,
                         [&] { ++rig.done_fired; });
  rig.sim.run();
  EXPECT_EQ(rig.done_fired, 1);
  EXPECT_EQ(rig.applier.wave_applied(), 3);
  EXPECT_FALSE(rig.applier.wave_active());
  for (const Channel& c : rig.current) EXPECT_EQ(c, ch40);
  EXPECT_EQ(rig.applier.applied_aps(),
            (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(rig.applier.stats().retries, 0u);
}

TEST(PlanApplier, RetriesThroughAnOutageAndAppliesOnReconnect) {
  ctrl::Backoff b;
  b.ack_timeout = time::millis(100);
  b.initial = time::millis(100);
  b.cap = time::seconds(60);  // reconnect, not the retry cadence, must win
  ApplierRig rig(1, ApplierRig::lossless(), b);
  rig.chan.set_online(0, false);
  rig.applier.begin_wave(rig.targets(ch40), 2, [&] { ++rig.done_fired; });
  rig.sim.run_until(time::seconds(2));
  EXPECT_EQ(rig.done_fired, 0);
  EXPECT_GE(rig.applier.stats().timeouts, 1u);
  rig.chan.set_online(0, true);  // apply-on-reconnect cuts the backoff short
  rig.sim.run_until(time::seconds(70));
  EXPECT_EQ(rig.done_fired, 1);
  EXPECT_EQ(rig.current[0], ch40);
  EXPECT_GE(rig.applier.stats().reconnect_kicks, 1u);
}

TEST(PlanApplier, CancelledWaveRejectsLateAcksAsStale) {
  ApplierRig rig(1);
  bool applied = false;
  rig.applier.begin_wave({{0, ch40}}, 2, [&] { applied = true; });
  rig.sim.run_until(time::millis(5));  // command in flight (delay is 20 ms)
  rig.applier.cancel_wave();
  rig.sim.run();
  // The delivery arrived after the controller moved on: rejected, the AP
  // keeps its channel, nothing fires.
  EXPECT_FALSE(applied);
  EXPECT_EQ(rig.current[0], ch36);
  EXPECT_EQ(rig.applier.stats().stale_rejected, 1u);
  EXPECT_EQ(rig.applier.stats().applied, 0u);
  EXPECT_FALSE(rig.applier.wave_active());
}

TEST(PlanApplier, BoundedAttemptsExhaust) {
  ctrl::Backoff b;
  b.ack_timeout = time::millis(50);
  b.initial = time::millis(50);
  b.max_attempts = 3;
  ApplierRig rig(2, ApplierRig::lossless(), b);
  rig.chan.set_online(1, false);  // AP 1 never acks
  rig.applier.begin_wave(rig.targets(ch40), 2, [&] { ++rig.done_fired; });
  rig.sim.run_until(time::seconds(10));
  EXPECT_EQ(rig.done_fired, 1);  // the wave still terminates
  EXPECT_EQ(rig.applier.wave_applied(), 1);
  EXPECT_EQ(rig.applier.wave_exhausted(), 1);
  EXPECT_EQ(rig.current[0], ch40);
  EXPECT_EQ(rig.current[1], ch36);
  EXPECT_EQ(rig.applier.stats().exhausted, 1u);
}

// ---------------------------------------------------------- coordinator --

struct CoordRig {
  Simulator sim;
  ctrl::ControlChannel chan;
  std::vector<Channel> current;
  ctrl::PlanApplier applier;
  ctrl::PlanStore store;
  double netp = 0.0;
  double util = 0.1;
  int replans = 0;
  ctrl::RolloutCoordinator coord;

  explicit CoordRig(int n_aps, ctrl::RolloutCoordinator::Config rc = {},
                    ctrl::Backoff b = {})
      : chan(sim, ApplierRig::lossless(), /*seed=*/5, n_aps),
        current(static_cast<std::size_t>(n_aps), ch36),
        applier(sim, chan, b,
                ctrl::PlanApplier::Hooks{[this](std::uint32_t ap,
                                                const Channel& c) {
                  if (current[ap] == c) return false;
                  current[ap] = c;
                  return true;
                }},
                /*seed=*/9),
        coord(sim, applier, store, rc,
              ctrl::RolloutCoordinator::Hooks{
                  [this] { return netp; },
                  [this](Time, Time) { return util; },
                  [this] { ++replans; },
                  [this](std::uint32_t ap) { return current[ap]; }}) {
    // Bootstrap: the as-built plan is the first last-known-good.
    ChannelPlan initial;
    for (std::uint32_t ap = 0; ap < current.size(); ++ap)
      initial[ApId{ap}] = current[ap];
    store.mark_good(store.commit(std::move(initial), 0.0, Time{}));
  }

  std::uint64_t commit(const Channel& c) {
    return store.commit(plan_all(static_cast<int>(current.size()), c), netp,
                        sim.now());
  }
};

TEST(RolloutCoordinator, CanaryThenGrowthWavesThenCommit) {
  ctrl::RolloutCoordinator::Config rc;
  rc.canary = 2;
  rc.wave_growth = 3;
  rc.validate_window = time::seconds(10);
  CoordRig rig(8, rc);
  const auto v = rig.commit(ch40);
  ASSERT_TRUE(rig.coord.start(v));
  rig.sim.run_until(time::minutes(5));
  EXPECT_EQ(rig.coord.state(), ctrl::RolloutState::kDone);
  EXPECT_EQ(rig.coord.outcome(), ctrl::RolloutOutcome::kCommitted);
  EXPECT_EQ(rig.coord.stats().waves_started, 2u);  // 2 + 6
  EXPECT_EQ(rig.store.last_known_good_version(), v);
  for (const Channel& c : rig.current) EXPECT_EQ(c, ch40);
  // Audit shape: start, wave, wave_done, validate, wave, wave_done,
  // validate, done.
  using Kind = ctrl::RolloutAudit::Record::Kind;
  const auto& recs = rig.coord.audit().records();
  ASSERT_EQ(recs.size(), 8u);
  EXPECT_EQ(recs.front().kind, Kind::kStart);
  EXPECT_EQ(recs[1].n_aps, 2u);  // canary size
  EXPECT_EQ(recs[4].n_aps, 6u);  // growth wave
  EXPECT_EQ(recs.back().kind, Kind::kDone);
  EXPECT_GT(recs.back().convergence_ns, 0);
}

TEST(RolloutCoordinator, StartRefusesWithoutLastKnownGood) {
  Simulator sim;
  ctrl::ControlChannel chan(sim, ApplierRig::lossless(), 5, 2);
  ctrl::PlanApplier applier(
      sim, chan, {},
      ctrl::PlanApplier::Hooks{[](std::uint32_t, const Channel&) {
        return true;
      }},
      9);
  ctrl::PlanStore store;
  ctrl::RolloutCoordinator coord(
      sim, applier, store, {},
      ctrl::RolloutCoordinator::Hooks{
          [] { return 0.0; },
          [](Time, Time) { return 0.0; },
          [] {},
          [](std::uint32_t) { return ch36; }});
  const auto v = store.commit(plan_all(2, ch40), 0.0, Time{});
  EXPECT_FALSE(coord.start(v));  // nothing safe to revert to
  store.mark_good(v);
  const auto v2 = store.commit(plan_all(2, ch44), 0.0, Time{});
  EXPECT_TRUE(coord.start(v2));
}

TEST(RolloutCoordinator, UtilizationRegressionRevertsToLastKnownGood) {
  ctrl::RolloutCoordinator::Config rc;
  rc.canary = 2;
  rc.validate_window = time::seconds(10);
  rc.util_regression_tol = 0.10;
  CoordRig rig(8, rc);
  const auto v = rig.commit(ch40);
  ASSERT_TRUE(rig.coord.start(v));
  // The canary lands, then utilization spikes before validation fires.
  rig.sim.schedule_at(time::seconds(5), [&] { rig.util = 0.5; });
  rig.sim.run_until(time::minutes(10));
  EXPECT_EQ(rig.coord.outcome(), ctrl::RolloutOutcome::kReverted);
  EXPECT_EQ(rig.coord.revert_reason(), ctrl::RevertReason::kTelemetry);
  EXPECT_EQ(rig.store.last_known_good_version(), 1u);  // not promoted
  for (const Channel& c : rig.current) EXPECT_EQ(c, ch36);  // all rolled back
  EXPECT_EQ(rig.replans, 1);  // post-revert replan requested
  EXPECT_EQ(rig.coord.stats().reverts_telemetry, 1u);
  // Only the canary ever switched, so only the canary switched back.
  EXPECT_EQ(rig.applier.stats().applied, 4u);  // 2 out + 2 back
}

TEST(RolloutCoordinator, NetPRegressionReverts) {
  ctrl::RolloutCoordinator::Config rc;
  rc.canary = 4;
  rc.validate_window = time::seconds(10);
  rc.netp_regression_tol = 1.0;
  CoordRig rig(4, rc);
  rig.netp = -2.0;
  const auto v = rig.commit(ch40);
  ASSERT_TRUE(rig.coord.start(v));
  rig.sim.schedule_at(time::seconds(5), [&] { rig.netp = -4.0; });
  rig.sim.run_until(time::minutes(10));
  EXPECT_EQ(rig.coord.outcome(), ctrl::RolloutOutcome::kReverted);
  EXPECT_EQ(rig.coord.revert_reason(), ctrl::RevertReason::kNetP);
}

TEST(RolloutCoordinator, MissingTelemetrySkipsTheUtilizationGate) {
  ctrl::RolloutCoordinator::Config rc;
  rc.canary = 4;
  rc.validate_window = time::seconds(10);
  CoordRig rig(4, rc);
  rig.util = std::numeric_limits<double>::quiet_NaN();  // collector is down
  const auto v = rig.commit(ch40);
  ASSERT_TRUE(rig.coord.start(v));
  rig.sim.run_until(time::minutes(5));
  // No data is not a regression: the rollout commits on the NetP gate alone.
  EXPECT_EQ(rig.coord.outcome(), ctrl::RolloutOutcome::kCommitted);
  EXPECT_GE(rig.coord.stats().validations_no_data, 1u);
}

TEST(RolloutCoordinator, RadarMidRolloutRevertsAndPinsTheStruckAp) {
  ctrl::RolloutCoordinator::Config rc;
  rc.canary = 2;
  rc.validate_window = time::seconds(30);
  CoordRig rig(6, rc);
  const auto v = rig.commit(ch40);
  ASSERT_TRUE(rig.coord.start(v));
  // Mid-rollout (canary applied, validating) radar lands on AP 1: the
  // harness has already evacuated it to its DFS fallback.
  rig.sim.schedule_at(time::seconds(10), [&] {
    rig.current[1] = ch149;  // the evacuation's fallback channel
    rig.coord.notify_radar(1);
  });
  rig.sim.run_until(time::minutes(10));
  EXPECT_EQ(rig.coord.outcome(), ctrl::RolloutOutcome::kReverted);
  EXPECT_EQ(rig.coord.revert_reason(), ctrl::RevertReason::kRadar);
  EXPECT_TRUE(rig.coord.radar_pinned().contains(1));
  // The struck AP stays on its fallback — the revert never re-targets it.
  EXPECT_EQ(rig.current[1], ch149);
  for (std::uint32_t ap = 0; ap < 6; ++ap) {
    if (ap != 1) EXPECT_EQ(rig.current[ap], ch36) << "ap " << ap;
  }
  EXPECT_EQ(rig.replans, 1);
  // A later rollout covering the AP unpins it.
  const auto v2 = rig.commit(ch44);
  ASSERT_TRUE(rig.coord.start(v2));
  EXPECT_FALSE(rig.coord.radar_pinned().contains(1));
}

TEST(RolloutCoordinator, WatchdogRevertsAStuckRollout) {
  ctrl::RolloutCoordinator::Config rc;
  rc.canary = 2;
  rc.validate_window = time::seconds(30);
  rc.watchdog = time::minutes(2);
  ctrl::Backoff b;
  b.ack_timeout = time::millis(200);
  b.initial = time::millis(200);
  b.cap = time::seconds(5);
  CoordRig rig(4, rc, b);
  rig.chan.set_online(1, false);  // canary member never acks: wave stalls
  const auto v = rig.commit(ch40);
  ASSERT_TRUE(rig.coord.start(v));
  rig.sim.run_until(time::minutes(1));
  EXPECT_EQ(rig.coord.state(), ctrl::RolloutState::kApplying);
  rig.sim.run_until(time::minutes(4));
  // Watchdog expired mid-wave; AP 1 is still partitioned, but everything
  // that applied rolled back and the rollout is terminal — not half-applied.
  EXPECT_EQ(rig.coord.outcome(), ctrl::RolloutOutcome::kReverted);
  EXPECT_EQ(rig.coord.revert_reason(), ctrl::RevertReason::kWatchdog);
  for (const Channel& c : rig.current) EXPECT_EQ(c, ch36);
  EXPECT_EQ(rig.coord.stats().reverts_watchdog, 1u);
}

TEST(RolloutCoordinator, NoopPlanCommitsImmediately) {
  CoordRig rig(4);
  // Re-commit the plan the fleet is already on.
  const auto v = rig.store.commit(plan_all(4, ch36), 0.0, Time{});
  ASSERT_TRUE(rig.coord.start(v));
  rig.sim.run_until(time::seconds(1));
  EXPECT_EQ(rig.coord.outcome(), ctrl::RolloutOutcome::kCommitted);
  EXPECT_EQ(rig.coord.stats().waves_started, 0u);
  EXPECT_EQ(rig.store.last_known_good_version(), v);
}

// ----------------------------------------------------------- chaos soak --

scenario::RolloutScenarioConfig soak_config(std::uint64_t net_seed,
                                            std::uint64_t plan_seed) {
  scenario::RolloutScenarioConfig cfg;
  cfg.n_aps = 10;
  cfg.net_seed = net_seed;
  cfg.ctrl_seed = plan_seed * 1000 + net_seed;
  cfg.horizon = time::hours(2);
  cfg.poll = time::minutes(1);
  cfg.channel.loss = 0.10;
  cfg.backoff.ack_timeout = time::millis(500);
  cfg.backoff.initial = time::millis(500);
  cfg.backoff.cap = time::seconds(10);
  cfg.rollout.canary = 2;
  cfg.rollout.validate_window = time::minutes(2);
  cfg.rollout.watchdog = time::minutes(10);

  fault::FaultPlan::RandomConfig rc;
  rc.horizon = cfg.horizon;
  rc.n_aps = cfg.n_aps;
  rc.n_links = cfg.n_aps;  // control links, one per AP
  rc.n_events = 10;
  rc.max_outage = time::minutes(3);  // long enough to interrupt waves
  cfg.faults = fault::FaultPlan::random(plan_seed, rc);
  // Pile on deterministic mid-wave chaos no random draw guarantees: a
  // radar strike and a control-partition flap inside the first rollout's
  // window (the first plan lands at the 15-minute planner firing), plus a
  // clock rewind scan.
  cfg.faults.radar(time::minutes(16), static_cast<int>(net_seed % 10))
      .link_flap(time::minutes(16) + time::seconds(30),
                 static_cast<int>((net_seed + 3) % 10), /*flaps=*/3,
                 time::seconds(20))
      .clock_jump(time::minutes(17), time::minutes(30));
  return cfg;
}

TEST(RolloutChaosSoak, EveryApConvergesAcrossSeedAndFaultPlans) {
  int rollouts_total = 0;
  for (std::uint64_t net_seed : {1u, 2u}) {
    for (std::uint64_t plan_seed : {41u, 42u, 43u, 44u, 45u, 46u, 47u, 48u,
                                    49u, 50u}) {
      const auto r =
          scenario::run_rollout_scenario(soak_config(net_seed, plan_seed));
      EXPECT_TRUE(r.converged)
          << "net " << net_seed << " plan " << plan_seed << ": "
          << r.half_applied << " half-applied APs, coordinator state not"
          << " terminal or wave still active";
      EXPECT_EQ(r.half_applied, 0)
          << "net " << net_seed << " plan " << plan_seed;
      rollouts_total += static_cast<int>(r.rollout.rollouts_started);
      // The fault plan fired in full.
      EXPECT_GT(r.fault_stats.fired, 0);
    }
  }
  // The soak exercised real rollouts, not 20 idle networks.
  EXPECT_GT(rollouts_total, 20);
}

TEST(RolloutChaosSoak, ScenarioIsExactlyReproducible) {
  const auto a = scenario::run_rollout_scenario(soak_config(1, 43));
  const auto b = scenario::run_rollout_scenario(soak_config(1, 43));
  EXPECT_EQ(a.audit_jsonl, b.audit_jsonl);
  EXPECT_EQ(a.fault_log, b.fault_log);
  EXPECT_EQ(a.final_plan, b.final_plan);
  EXPECT_EQ(a.convergence_s, b.convergence_s);
  EXPECT_EQ(a.apply.commands_sent, b.apply.commands_sent);
}

TEST(RolloutChaosSoak, AuditIsByteIdenticalAcrossWorkerCounts) {
  // The planner's proposal scoring is the only pool-sharded stage in the
  // loop; the rollout audit (and everything downstream of the plans) must
  // not care how many workers scored them.
  exec::TaskPool one(1);
  exec::TaskPool four(4);
  auto cfg1 = soak_config(2, 47);
  cfg1.pool = &one;
  auto cfg4 = soak_config(2, 47);
  cfg4.pool = &four;
  const auto a = scenario::run_rollout_scenario(cfg1);
  const auto b = scenario::run_rollout_scenario(cfg4);
  EXPECT_EQ(a.audit_jsonl, b.audit_jsonl);
  EXPECT_FALSE(a.audit_jsonl.empty());
  EXPECT_EQ(a.final_plan, b.final_plan);
  EXPECT_EQ(a.fault_log, b.fault_log);
  EXPECT_EQ(a.convergence_s, b.convergence_s);
  EXPECT_EQ(a.last_known_good, b.last_known_good);
}

TEST(RolloutChaosSoak, RevertsActuallyHappenSomewhereInTheGrid) {
  // The invariant tests above would pass trivially if no rollout ever hit
  // trouble; check the grid actually produced reverts and retries. A
  // fleet-wide control partition opens just after the first rollout starts
  // (the 15-minute planner firing) and outlasts the 10-minute watchdog, so
  // any rollout with more than one wave stalls mid-apply and reverts; the
  // revert itself converges once the partition heals.
  std::uint64_t reverted = 0, retries = 0, converged = 0;
  for (std::uint64_t plan_seed : {41u, 43u, 45u, 47u, 49u}) {
    auto cfg = soak_config(1, plan_seed);
    for (int ap = 0; ap < cfg.n_aps; ++ap)
      cfg.faults.link_outage(time::minutes(15) + time::seconds(30), ap,
                             time::minutes(11));
    const auto r = scenario::run_rollout_scenario(cfg);
    reverted += r.rollout.reverted;
    retries += r.apply.retries;
    converged += r.converged ? 1 : 0;
    EXPECT_EQ(r.half_applied, 0) << "plan " << plan_seed;
  }
  EXPECT_GT(retries, 0u);  // loss + partitions forced retries
  EXPECT_GT(reverted, 0u);
  EXPECT_EQ(converged, 5u);  // reverting is not an excuse to not converge
}

}  // namespace
}  // namespace w11
