// Tests for the scenario::Testbed harness itself — the rig every FastACK
// figure stands on, so its accounting must be trustworthy.

#include <gtest/gtest.h>

#include "scenario/testbed.hpp"

namespace w11 {
namespace {

using scenario::TcpAccel;
using scenario::Testbed;
using scenario::TestbedConfig;

TEST(Testbed, ThroughputExcludesWarmupBytes) {
  // Identical runs, different warmups: the longer-warmup run measures a
  // later window and must not double-count earlier bytes.
  auto bytes_measured = [](Time warmup) {
    TestbedConfig cfg;
    cfg.n_clients_per_ap = 2;
    cfg.duration = time::seconds(2);
    cfg.warmup = warmup;
    cfg.seed = 3;
    Testbed tb(cfg);
    tb.run();
    return tb.aggregate_throughput_mbps();
  };
  const double with_warmup = bytes_measured(time::seconds(2));
  const double without = bytes_measured(time::millis(1));
  // Slow start lives inside the no-warmup window: steady-state (warmed)
  // throughput must be at least as high.
  EXPECT_GT(with_warmup, without * 0.95);
}

TEST(Testbed, RunTwiceRejected) {
  TestbedConfig cfg;
  cfg.n_clients_per_ap = 1;
  cfg.duration = time::millis(50);
  cfg.warmup = time::millis(1);
  Testbed tb(cfg);
  tb.run();
  EXPECT_THROW(tb.run(), std::logic_error);
}

TEST(Testbed, ResultsBeforeRunRejected) {
  TestbedConfig cfg;
  cfg.n_clients_per_ap = 1;
  Testbed tb(cfg);
  EXPECT_THROW((void)tb.aggregate_throughput_mbps(), std::logic_error);
}

TEST(Testbed, SymmetricCellsGiveEqualLinkBudgets) {
  TestbedConfig cfg;
  cfg.n_aps = 2;
  cfg.n_clients_per_ap = 4;
  cfg.symmetric_cells = true;
  cfg.prop.shadowing_sigma = 0.0;
  cfg.duration = time::millis(50);
  cfg.warmup = time::millis(1);
  Testbed tb(cfg);
  tb.run();
  for (int c = 0; c < 4; ++c) {
    const auto* rc0 = tb.ap(0).rate_controller(tb.client(0, c).id());
    const auto* rc1 = tb.ap(1).rate_controller(tb.client(1, c).id());
    ASSERT_NE(rc0, nullptr);
    ASSERT_NE(rc1, nullptr);
    EXPECT_NEAR(rc0->mean_snr(), rc1->mean_snr(), 1e-9) << "client " << c;
  }
}

TEST(Testbed, PerClientThroughputVectorIsApMajor) {
  TestbedConfig cfg;
  cfg.n_aps = 2;
  cfg.n_clients_per_ap = 3;
  cfg.duration = time::seconds(1);
  cfg.warmup = time::millis(1);
  Testbed tb(cfg);
  tb.run();
  const auto v = tb.per_client_throughput_mbps();
  ASSERT_EQ(v.size(), 6u);
  double sum = 0;
  for (double x : v) sum += x;
  EXPECT_NEAR(sum, tb.aggregate_throughput_mbps(), 1e-9);
  EXPECT_NEAR(tb.ap_throughput_mbps(0) + tb.ap_throughput_mbps(1), sum, 1e-9);
}

TEST(Testbed, MixedAccelVectorAppliesPerAp) {
  TestbedConfig cfg;
  cfg.n_aps = 3;
  cfg.n_clients_per_ap = 1;
  cfg.accel = {TcpAccel::kNone, TcpAccel::kSnoop, TcpAccel::kFastAck};
  cfg.duration = time::millis(400);
  cfg.warmup = time::millis(1);
  Testbed tb(cfg);
  tb.run();
  EXPECT_EQ(tb.agent(0), nullptr);
  EXPECT_EQ(tb.snoop_agent(0), nullptr);
  EXPECT_EQ(tb.agent(1), nullptr);
  ASSERT_NE(tb.snoop_agent(1), nullptr);
  ASSERT_NE(tb.agent(2), nullptr);
  EXPECT_EQ(tb.snoop_agent(2), nullptr);
  EXPECT_GT(tb.agent(2)->stats().fast_acks_sent, 0u);
}

TEST(Testbed, SingleEntryAccelAppliesToAllAps) {
  TestbedConfig cfg;
  cfg.n_aps = 2;
  cfg.n_clients_per_ap = 1;
  cfg.accel = {TcpAccel::kFastAck};
  cfg.duration = time::millis(200);
  cfg.warmup = time::millis(1);
  Testbed tb(cfg);
  tb.run();
  EXPECT_NE(tb.agent(0), nullptr);
  EXPECT_NE(tb.agent(1), nullptr);
}

TEST(Testbed, DscpHookMarksEveryFlow) {
  TestbedConfig cfg;
  cfg.n_clients_per_ap = 2;
  cfg.dscp_of = [](int c) { return c == 0 ? 46 : 8; };
  cfg.duration = time::millis(400);
  cfg.warmup = time::millis(1);
  Testbed tb(cfg);
  tb.run();
  const auto& st = tb.ap(0).stats();
  EXPECT_GT(st.mpdus_acked_by_ac[static_cast<int>(AccessCategory::VO)], 0u);
  EXPECT_GT(st.mpdus_acked_by_ac[static_cast<int>(AccessCategory::BK)], 0u);
}

TEST(Testbed, UdpModeHasNoSenders) {
  TestbedConfig cfg;
  cfg.n_clients_per_ap = 1;
  cfg.traffic = scenario::TrafficType::kUdpDownlink;
  cfg.duration = time::millis(200);
  cfg.warmup = time::millis(1);
  Testbed tb(cfg);
  tb.run();
  EXPECT_THROW((void)tb.sender(0, 0), std::logic_error);
  EXPECT_GT(tb.client(0, 0).udp_bytes_received(), 0u);
}

TEST(Testbed, MediumStatisticsExposed) {
  TestbedConfig cfg;
  cfg.n_clients_per_ap = 4;
  cfg.duration = time::seconds(1);
  cfg.warmup = time::millis(1);
  Testbed tb(cfg);
  tb.run();
  EXPECT_GT(tb.medium().txop_count(), 100u);
  EXPECT_GT(tb.medium().total_busy_time(), time::millis(100));
}

}  // namespace
}  // namespace w11
