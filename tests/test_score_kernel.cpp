// Parity and determinism tests for the batched SoA scoring kernel
// (DESIGN.md §14): PlanContext::score_candidates / add_neighbor_scores must
// be bit-for-bit equal to the scalar node_p_log path on every input —
// including the kNodePLogFloor clamp, ψ overlays, trial moves, degenerate
// self-neighbor scans and non-catalog channels — plus the audit term-sum
// parity, the ScanStatsCache reuse contract, and a golden NetP digest
// pinning cross-build FP determinism.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/turboca/plan_context.hpp"
#include "core/turboca/turboca.hpp"
#include "flowsim/scan_index.hpp"
#include "obs/audit.hpp"
#include "workload/topology.hpp"

namespace w11 {
namespace {

using turboca::Params;
using turboca::PlanContext;
using turboca::PsiSet;

std::vector<ApScan> campus_scans(int n_aps, std::uint64_t seed) {
  workload::CampusConfig cc;
  cc.n_aps = n_aps;
  cc.buildings = std::max(2, n_aps / 10);
  cc.seed = static_cast<std::uint32_t>(seed);
  return workload::make_campus(cc)->scan();
}

// A deliberately hostile random fleet: mixed bands and widths, loads that
// straddle zero (empty-AP rule), qualities/external utils spanning the
// metric floor, RSSIs straddling the contender floor, non-catalog current
// channels, and (optionally) an AP that reports itself as a neighbor.
std::vector<ApScan> hostile_scans(int n_aps, Rng& rng, bool self_neighbor) {
  std::vector<ApScan> scans;
  scans.reserve(static_cast<std::size_t>(n_aps));
  const auto cat20 = channels::us_catalog(Band::G5, ChannelWidth::MHz20);
  const auto cat80 = channels::us_catalog(Band::G5, ChannelWidth::MHz80);
  for (int i = 0; i < n_aps; ++i) {
    ApScan s;
    s.id = ApId{static_cast<std::uint32_t>(i)};
    const bool g24 = rng.uniform() < 0.2;
    s.band = g24 ? Band::G2_4 : Band::G5;
    s.max_width = g24 ? ChannelWidth::MHz20
                      : static_cast<ChannelWidth>(rng.uniform_int(0, 3));
    const double r = rng.uniform();
    if (g24) {
      s.current = Channel{Band::G2_4, static_cast<int>(rng.uniform_int(1, 11)),
                          ChannelWidth::MHz20};
    } else if (r < 0.1) {
      // Non-catalog current channel: exercises the ordinal==-1 scalar
      // fallback slot (number 33 is not a US catalog channel).
      s.current = Channel{Band::G5, 33, ChannelWidth::MHz20};
    } else if (r < 0.5) {
      s.current = cat20[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(cat20.size()) - 1))];
    } else {
      s.current = cat80[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(cat80.size()) - 1))];
    }
    s.dfs_capable = rng.uniform() < 0.5;
    s.has_clients = rng.uniform() < 0.8;
    if (s.has_clients) {
      for (int w = 0; w <= static_cast<int>(s.max_width); ++w)
        if (rng.uniform() < 0.7)
          s.load_by_width[static_cast<ChannelWidth>(w)] = rng.uniform(0.0, 4.0);
    }
    s.utilization_current = rng.uniform();
    for (int comp = 1; comp <= 165; comp += 2) {
      if (rng.uniform() < 0.3) s.external_util[comp] = rng.uniform();
      // Qualities down to 0.0 push metrics through the 1e-12 floor.
      if (rng.uniform() < 0.3) s.quality[comp] = rng.uniform(0.0, 1.0);
    }
    const int n_nbrs = static_cast<int>(rng.uniform_int(0, 6));
    for (int k = 0; k < n_nbrs; ++k)
      s.neighbors.push_back(
          NeighborReport{ApId{static_cast<std::uint32_t>(
                             rng.uniform_int(0, n_aps - 1))},
                         rng.uniform(-100.0, -40.0)});
    if (self_neighbor && i == 0)
      s.neighbors.push_back(NeighborReport{s.id, -50.0});
    scans.push_back(std::move(s));
  }
  return scans;
}

// The scalar oracle for one candidate slot: exactly what the kernel
// contract in plan_context.hpp promises out[k] equals.
double scalar_score(const PlanContext& ctx, std::size_t i, std::size_t k,
                    const PsiSet* psi) {
  const flowsim::ScanIndex& index = ctx.index();
  const PlanContext::TrialMove trial{i, index.candidates(i)[k],
                                     index.candidate_ordinals(i)[k]};
  return ctx.node_p_log(i, index.candidates(i)[k], psi, &trial);
}

void expect_kernel_parity(const flowsim::ScanIndex& index, const Params& params,
                          const ChannelPlan& plan, const PsiSet* psi) {
  const PlanContext ctx(index, params, plan);
  for (std::size_t i = 0; i < index.size(); ++i) {
    const std::size_t n_cands = index.candidates(i).size();
    std::vector<double> got(n_cands);
    ctx.score_candidates(i, got, psi);
    for (std::size_t k = 0; k < n_cands; ++k) {
      const double want = scalar_score(ctx, i, k, psi);
      ASSERT_EQ(std::bit_cast<std::uint64_t>(got[k]),
                std::bit_cast<std::uint64_t>(want))
          << "own-term mismatch ap=" << i << " cand=" << k << " got=" << got[k]
          << " want=" << want;
    }

    // Neighbor legs: accumulate like ACC does and compare against the full
    // scalar sum (own + every affected neighbor, scan-report order).
    for (const flowsim::ScanIndex::Neighbor& nb : index.neighbors(i)) {
      if (psi != nullptr && psi->contains(nb.index)) continue;
      ctx.add_neighbor_scores(nb.index, i, psi, got);
    }
    for (std::size_t k = 0; k < n_cands; ++k) {
      const PlanContext::TrialMove trial{i, index.candidates(i)[k],
                                         index.candidate_ordinals(i)[k]};
      double want = ctx.node_p_log(i, index.candidates(i)[k], psi, &trial);
      for (const flowsim::ScanIndex::Neighbor& nb : index.neighbors(i)) {
        if (psi != nullptr && psi->contains(nb.index)) continue;
        const Channel& nc =
            nb.index == i ? index.candidates(i)[k] : ctx.channel_of(nb.index);
        want += ctx.node_p_log(nb.index, nc, psi, &trial);
      }
      ASSERT_EQ(std::bit_cast<std::uint64_t>(got[k]),
                std::bit_cast<std::uint64_t>(want))
          << "acc-sum mismatch ap=" << i << " cand=" << k;
    }
  }
}

TEST(ScoreKernel, MatchesScalarOnCampusFleet) {
  const Params params;
  const flowsim::ScanIndex index(campus_scans(60, 5),
                                 params.neighbor_rssi_floor);
  ChannelPlan plan;
  for (const auto& s : index.scans()) plan[s.id] = s.current;
  expect_kernel_parity(index, params, plan, nullptr);
}

TEST(ScoreKernel, MatchesScalarOnRandomizedHostileFleets) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 977);
    const bool self_nb = seed % 3 == 0;
    Params params;
    params.switch_penalty = rng.uniform(0.0, 0.3);
    params.empty_ap_load = rng.uniform(0.0, 0.5);
    params.high_util_threshold = rng.uniform(0.3, 0.95);
    const flowsim::ScanIndex index(hostile_scans(24, rng, self_nb),
                                   params.neighbor_rssi_floor);

    // Random plan: most APs stay, some move to a random candidate.
    ChannelPlan plan;
    for (std::size_t i = 0; i < index.size(); ++i) {
      const ApScan& s = index.scan(i);
      const auto& cands = index.candidates(i);
      plan[s.id] = rng.uniform() < 0.5
                       ? s.current
                       : cands[static_cast<std::size_t>(rng.uniform_int(
                             0, static_cast<std::int64_t>(cands.size()) - 1))];
    }

    // Random ψ overlay (the in-flight set ACC excludes from contention).
    PsiSet psi(index.size());
    for (std::size_t i = 0; i < index.size(); ++i)
      if (rng.uniform() < 0.25) psi.insert(i);

    expect_kernel_parity(index, params, plan, nullptr);
    expect_kernel_parity(index, params, plan, &psi);
  }
}

TEST(ScoreKernel, FloorClampMatchesScalarBitForBit) {
  // Saturate every component: airtime * quality - penalty <= 0 everywhere,
  // so every term takes the kNodePLogFloor branch in both paths.
  std::vector<ApScan> scans = campus_scans(12, 9);
  for (ApScan& s : scans)
    for (int comp = 1; comp <= 165; ++comp) {
      s.external_util[comp] = 1.0;
      s.quality[comp] = 0.0;
    }
  const Params params;
  const flowsim::ScanIndex index(std::move(scans), params.neighbor_rssi_floor);
  ChannelPlan plan;
  for (const auto& s : index.scans()) plan[s.id] = s.current;
  const PlanContext ctx(index, params, plan);
  for (std::size_t i = 0; i < index.size(); ++i) {
    std::vector<double> got(index.candidates(i).size());
    ctx.score_candidates(i, got, nullptr);
    for (std::size_t k = 0; k < got.size(); ++k) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(got[k]),
                std::bit_cast<std::uint64_t>(scalar_score(ctx, i, k, nullptr)));
      // The clamp actually fired: the score is a ±load·kNodePLogFloor sum.
      EXPECT_LT(got[k], 0.0);
    }
  }
}

TEST(ScoreKernel, AuditTermBreakdownSumsToKernelScore) {
  // The obs PlanAudit breakdown stays on the scalar path; its per-width
  // log_term entries must sum (in order) to exactly the kernel's score for
  // the same (AP, channel) when no trial interferes (no self-neighbors on
  // the campus fleet, and the self-trial is a no-op there).
  const Params params;
  const flowsim::ScanIndex index(campus_scans(40, 11),
                                 params.neighbor_rssi_floor);
  ChannelPlan plan;
  for (const auto& s : index.scans()) plan[s.id] = s.current;
  PlanContext ctx(index, params, plan);
  for (std::size_t i = 0; i < index.size(); ++i) {
    ASSERT_FALSE(index.has_self_neighbor(i));
    std::vector<double> got(index.candidates(i).size());
    ctx.score_candidates(i, got, nullptr);
    for (std::size_t k = 0; k < got.size(); ++k) {
      std::vector<obs::NodePTerm> terms;
      const double scalar =
          ctx.node_p_log_terms(i, index.candidates(i)[k], &terms);
      const double sum = obs::sum_log_terms(terms);
      ASSERT_EQ(std::bit_cast<std::uint64_t>(scalar),
                std::bit_cast<std::uint64_t>(sum));
      ASSERT_EQ(std::bit_cast<std::uint64_t>(got[k]),
                std::bit_cast<std::uint64_t>(scalar));
    }
  }
}

TEST(ScoreKernel, StatsCacheHitsAreBitIdentical) {
  const Params params;
  const std::vector<ApScan> scans = campus_scans(30, 13);
  flowsim::ScanStatsCache cache;
  const flowsim::ScanIndex cold(scans, params.neighbor_rssi_floor, nullptr,
                                &cache);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, scans.size());

  const flowsim::ScanIndex warm(scans, params.neighbor_rssi_floor, nullptr,
                                &cache);
  EXPECT_EQ(cache.stats().hits, scans.size());
  const std::size_t n_ords = channels::catalog_size();
  for (std::size_t i = 0; i < scans.size(); ++i)
    for (std::size_t o = 0; o < n_ords; ++o) {
      const auto& a = cold.stats(i, static_cast<int>(o));
      const auto& b = warm.stats(i, static_cast<int>(o));
      ASSERT_EQ(std::bit_cast<std::uint64_t>(a.external_util),
                std::bit_cast<std::uint64_t>(b.external_util));
      ASSERT_EQ(std::bit_cast<std::uint64_t>(a.quality),
                std::bit_cast<std::uint64_t>(b.quality));
    }
}

TEST(ScoreKernel, StatsCacheMissesOnContentChangeOnly) {
  const Params params;
  std::vector<ApScan> scans = campus_scans(20, 17);
  flowsim::ScanStatsCache cache;
  { const flowsim::ScanIndex i0(scans, params.neighbor_rssi_floor, nullptr,
                                &cache); }
  // Mutating fields the aggregates do not read (loads, neighbors) keeps
  // every row a hit; touching one AP's spectrum misses exactly that AP.
  scans[3].load_by_width[ChannelWidth::MHz20] += 1.0;
  scans[5].neighbors.push_back(NeighborReport{scans[0].id, -55.0});
  { const flowsim::ScanIndex i1(scans, params.neighbor_rssi_floor, nullptr,
                                &cache); }
  EXPECT_EQ(cache.stats().hits, scans.size());
  EXPECT_EQ(cache.stats().misses, scans.size());

  scans[7].external_util[36] = 0.77;
  { const flowsim::ScanIndex i2(scans, params.neighbor_rssi_floor, nullptr,
                                &cache); }
  EXPECT_EQ(cache.stats().hits, 2 * scans.size() - 1);
  EXPECT_EQ(cache.stats().misses, scans.size() + 1);
}

TEST(ScoreKernel, StatsCacheRespectsCapacity) {
  const Params params;
  // Hostile fleet: every AP's spectrum content is distinct (random maps),
  // so 20 APs want 20 cache rows against a capacity of 4. LRU eviction
  // keeps the bound: exactly 4 rows resident, the 16 overflow rows evicted
  // oldest-first.
  Rng rng(23);
  const std::vector<ApScan> scans = hostile_scans(20, rng, false);
  flowsim::ScanStatsCache cache(/*capacity=*/4);
  { const flowsim::ScanIndex i0(scans, params.neighbor_rssi_floor, nullptr,
                                &cache); }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().evictions, 16u);
  // Still correct, just smaller: a second build hits on the retained rows
  // (the most recently inserted ones — APs 16..19).
  { const flowsim::ScanIndex i1(scans, params.neighbor_rssi_floor, nullptr,
                                &cache); }
  EXPECT_EQ(cache.stats().hits, 4u);
  EXPECT_EQ(cache.size(), 4u);
}

TEST(ScoreKernel, StatsCacheLruEvictionIsDeterministic) {
  const Params params;
  Rng rng(29);
  const std::vector<ApScan> scans = hostile_scans(12, rng, false);
  // Two caches fed the identical probe/insert history hold the identical
  // survivor set — eviction is a pure function of the access sequence.
  flowsim::ScanStatsCache a(/*capacity=*/5), b(/*capacity=*/5);
  for (int round = 0; round < 3; ++round) {
    const flowsim::ScanIndex ia(scans, params.neighbor_rssi_floor, nullptr, &a);
    const flowsim::ScanIndex ib(scans, params.neighbor_rssi_floor, nullptr, &b);
  }
  EXPECT_EQ(a.stats().hits, b.stats().hits);
  EXPECT_EQ(a.stats().misses, b.stats().misses);
  EXPECT_EQ(a.stats().evictions, b.stats().evictions);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.size(), 5u);

  // A probed row is MRU: with capacity == fleet size, re-building keeps
  // every row resident and evicts nothing further.
  flowsim::ScanStatsCache c(/*capacity=*/12);
  { const flowsim::ScanIndex i0(scans, params.neighbor_rssi_floor, nullptr,
                                &c); }
  const std::uint64_t evictions_cold = c.stats().evictions;
  { const flowsim::ScanIndex i1(scans, params.neighbor_rssi_floor, nullptr,
                                &c); }
  EXPECT_EQ(c.stats().evictions, evictions_cold);
  EXPECT_EQ(c.stats().hits, 12u);

  // capacity 0 disables retention: every probe misses, nothing resident.
  flowsim::ScanStatsCache off(/*capacity=*/0);
  { const flowsim::ScanIndex i0(scans, params.neighbor_rssi_floor, nullptr,
                                &off); }
  { const flowsim::ScanIndex i1(scans, params.neighbor_rssi_floor, nullptr,
                                &off); }
  EXPECT_EQ(off.stats().hits, 0u);
  EXPECT_EQ(off.size(), 0u);
}

// Golden NetP digest (determinism guard): the exact bits of net_p_log on a
// fixed fleet. Catches value-unsafe FP creeping into the build (fast-math,
// reassociation) and silent arithmetic drift in refactors. If this fails
// after an INTENTIONAL metric change, regenerate the constant by running
// the test and copying the printed actual digest. Depends on the host
// libm's log() rounding; the CI toolchain pins one implementation.
TEST(ScoreKernel, GoldenNetPDigest) {
  const Params params;
  const flowsim::ScanIndex index(campus_scans(60, 5),
                                 params.neighbor_rssi_floor);
  ChannelPlan plan;
  for (const auto& s : index.scans()) plan[s.id] = s.current;
  PlanContext ctx(index, params, plan);
  const double netp = ctx.net_p_log();
  constexpr std::uint64_t kGoldenDigest = 0x4077e0e9ad303ae6ULL;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(netp), kGoldenDigest)
      << "NetP bits changed: actual digest 0x" << std::hex
      << std::bit_cast<std::uint64_t>(netp) << " value " << netp;
}

}  // namespace
}  // namespace w11
