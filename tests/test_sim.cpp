// Unit tests for the discrete-event engine.

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace w11 {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), Time{0});
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(time::millis(3), [&] { order.push_back(3); });
  sim.schedule_at(time::millis(1), [&] { order.push_back(1); });
  sim.schedule_at(time::millis(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), time::millis(3));
}

TEST(Simulator, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(time::millis(1), [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  Time fired{};
  sim.schedule_at(time::millis(5), [&] {
    sim.schedule_after(time::millis(2), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, time::millis(7));
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.schedule_at(time::millis(10), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(time::millis(5), [] {}), std::logic_error);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventHandle h = sim.schedule_at(time::millis(1), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelAfterExecutionIsHarmless) {
  Simulator sim;
  EventHandle h = sim.schedule_at(time::millis(1), [] {});
  sim.run();
  h.cancel();  // no crash
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(time::millis(1), [&] { ++count; });
  sim.schedule_at(time::millis(5), [&] { ++count; });
  sim.schedule_at(time::millis(10), [&] { ++count; });
  sim.run_until(time::millis(5));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), time::millis(5));
  sim.run_until(time::millis(20));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), time::millis(20));  // clock reaches the horizon
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(time::millis(1), [&] { ++count; });
  sim.schedule_at(time::millis(2), [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, ProcessedEventsExcludesCancelled) {
  Simulator sim;
  sim.schedule_at(time::millis(1), [] {});
  EventHandle h = sim.schedule_at(time::millis(2), [] {});
  h.cancel();
  sim.run();
  EXPECT_EQ(sim.processed_events(), 1u);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.schedule_after(time::micros(1), recurse);
  };
  sim.schedule_at(Time{0}, recurse);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), time::micros(9));
}

TEST(PeriodicTimer, FiresAtPeriod) {
  Simulator sim;
  std::vector<Time> fires;
  PeriodicTimer timer(sim, time::millis(10), [&] { fires.push_back(sim.now()); });
  sim.run_until(time::millis(35));
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[0], time::millis(10));
  EXPECT_EQ(fires[1], time::millis(20));
  EXPECT_EQ(fires[2], time::millis(30));
}

TEST(PeriodicTimer, FirstDelayDiffersFromPeriod) {
  Simulator sim;
  std::vector<Time> fires;
  PeriodicTimer timer(sim, time::millis(1), time::millis(10),
                      [&] { fires.push_back(sim.now()); });
  sim.run_until(time::millis(22));
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[0], time::millis(1));
  EXPECT_EQ(fires[1], time::millis(11));
  EXPECT_EQ(fires[2], time::millis(21));
}

TEST(PeriodicTimer, StopHalts) {
  Simulator sim;
  int count = 0;
  PeriodicTimer timer(sim, time::millis(10), [&] {
    if (++count == 2) timer.stop();
  });
  sim.run_until(time::millis(100));
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTimer, DestructionCancels) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTimer timer(sim, time::millis(10), [&] { ++count; });
  }
  sim.run_until(time::millis(100));
  EXPECT_EQ(count, 0);
}

TEST(PeriodicTimer, ZeroPeriodRejected) {
  Simulator sim;
  EXPECT_THROW(PeriodicTimer(sim, Time{0}, [] {}), std::logic_error);
}

}  // namespace
}  // namespace w11
