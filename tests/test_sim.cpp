// Unit tests for the discrete-event engine.

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"

namespace w11 {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), Time{0});
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(time::millis(3), [&] { order.push_back(3); });
  sim.schedule_at(time::millis(1), [&] { order.push_back(1); });
  sim.schedule_at(time::millis(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), time::millis(3));
}

TEST(Simulator, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(time::millis(1), [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  Time fired{};
  sim.schedule_at(time::millis(5), [&] {
    sim.schedule_after(time::millis(2), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, time::millis(7));
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.schedule_at(time::millis(10), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(time::millis(5), [] {}), std::logic_error);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventHandle h = sim.schedule_at(time::millis(1), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelAfterExecutionIsHarmless) {
  Simulator sim;
  EventHandle h = sim.schedule_at(time::millis(1), [] {});
  sim.run();
  h.cancel();  // no crash
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(time::millis(1), [&] { ++count; });
  sim.schedule_at(time::millis(5), [&] { ++count; });
  sim.schedule_at(time::millis(10), [&] { ++count; });
  sim.run_until(time::millis(5));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), time::millis(5));
  sim.run_until(time::millis(20));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), time::millis(20));  // clock reaches the horizon
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(time::millis(1), [&] { ++count; });
  sim.schedule_at(time::millis(2), [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, ProcessedEventsExcludesCancelled) {
  Simulator sim;
  sim.schedule_at(time::millis(1), [] {});
  EventHandle h = sim.schedule_at(time::millis(2), [] {});
  h.cancel();
  sim.run();
  EXPECT_EQ(sim.processed_events(), 1u);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.schedule_after(time::micros(1), recurse);
  };
  sim.schedule_at(Time{0}, recurse);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), time::micros(9));
}

TEST(PeriodicTimer, FiresAtPeriod) {
  Simulator sim;
  std::vector<Time> fires;
  PeriodicTimer timer(sim, time::millis(10), [&] { fires.push_back(sim.now()); });
  sim.run_until(time::millis(35));
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[0], time::millis(10));
  EXPECT_EQ(fires[1], time::millis(20));
  EXPECT_EQ(fires[2], time::millis(30));
}

TEST(PeriodicTimer, FirstDelayDiffersFromPeriod) {
  Simulator sim;
  std::vector<Time> fires;
  PeriodicTimer timer(sim, time::millis(1), time::millis(10),
                      [&] { fires.push_back(sim.now()); });
  sim.run_until(time::millis(22));
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[0], time::millis(1));
  EXPECT_EQ(fires[1], time::millis(11));
  EXPECT_EQ(fires[2], time::millis(21));
}

TEST(PeriodicTimer, StopHalts) {
  Simulator sim;
  int count = 0;
  PeriodicTimer timer(sim, time::millis(10), [&] {
    if (++count == 2) timer.stop();
  });
  sim.run_until(time::millis(100));
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTimer, DestructionCancels) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTimer timer(sim, time::millis(10), [&] { ++count; });
  }
  sim.run_until(time::millis(100));
  EXPECT_EQ(count, 0);
}

TEST(PeriodicTimer, ZeroPeriodRejected) {
  Simulator sim;
  EXPECT_THROW(PeriodicTimer(sim, Time{0}, [] {}), std::logic_error);
}

// --- EventHandle lifetime hazards ------------------------------------------
// A handle may legally outlive everything it refers to: the event (already
// run), the slot (recycled for a newer event), or the whole Simulator. All
// of those must be safe no-ops, on both engines.

class EventHandleLifetime
    : public ::testing::TestWithParam<Simulator::Engine> {};

TEST_P(EventHandleLifetime, CancelAfterSimulatorDestroyedIsSafe) {
  auto sim = std::make_unique<Simulator>(GetParam());
  EventHandle pending = sim->schedule_at(time::millis(5), [] {});
  EventHandle ran = sim->schedule_at(time::millis(1), [] {});
  sim->run_until(time::millis(2));
  sim.reset();  // arena and queue die with the simulator
  EXPECT_FALSE(pending.pending());
  EXPECT_FALSE(ran.pending());
  pending.cancel();  // must not touch freed memory
  ran.cancel();
}

TEST_P(EventHandleLifetime, CancelAfterExecutionIsInert) {
  Simulator sim(GetParam());
  int runs = 0;
  EventHandle h = sim.schedule_at(time::millis(1), [&] { ++runs; });
  sim.run();
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(h.pending());
  h.cancel();
  // Cancelling a completed event must not disturb later scheduling.
  sim.schedule_after(time::millis(1), [&] { ++runs; });
  sim.run();
  EXPECT_EQ(runs, 2);
}

TEST_P(EventHandleLifetime, StaleHandleCannotCancelSlotReuse) {
  Simulator sim(GetParam());
  EventHandle old = sim.schedule_at(time::millis(1), [] {});
  sim.run();  // old's storage is recycled
  // The next event takes over the freed storage (slot 0 in the arena); a
  // stale handle's cancel must not leak through to it.
  bool ran = false;
  EventHandle fresh = sim.schedule_after(time::millis(1), [&] { ran = true; });
  old.cancel();
  EXPECT_TRUE(fresh.pending());
  sim.run();
  EXPECT_TRUE(ran);
}

TEST_P(EventHandleLifetime, CancelledSlotReuseIsIsolated) {
  Simulator sim(GetParam());
  EventHandle a = sim.schedule_at(time::millis(1), [] {});
  a.cancel();
  sim.run();  // pops and recycles the cancelled record
  bool ran = false;
  sim.schedule_after(time::millis(1), [&] { ran = true; });
  a.cancel();  // stale again — different generation now
  sim.run();
  EXPECT_TRUE(ran);
}

TEST_P(EventHandleLifetime, DefaultConstructedHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();
}

TEST_P(EventHandleLifetime, CopiedHandleCancelsSameEvent) {
  Simulator sim(GetParam());
  bool ran = false;
  EventHandle h = sim.schedule_at(time::millis(1), [&] { ran = true; });
  EventHandle copy = h;
  copy.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(ran);
}

TEST_P(EventHandleLifetime, SelfCancelDuringExecutionIsSafe) {
  Simulator sim(GetParam());
  EventHandle h;
  int runs = 0;
  h = sim.schedule_at(time::millis(1), [&] {
    ++runs;
    h.cancel();  // cancelling the event currently running: no-op
  });
  sim.run();
  EXPECT_EQ(runs, 1);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, EventHandleLifetime,
                         ::testing::Values(Simulator::Engine::kArena,
                                           Simulator::Engine::kReference),
                         [](const auto& param_info) {
                           return param_info.param == Simulator::Engine::kArena
                                      ? "Arena"
                                      : "Reference";
                         });

// --- arena-engine internals -------------------------------------------------

TEST(Simulator, OversizedCallbackCapturesSurviveHeapFallback) {
  // Captures past SmallFn's inline buffer take the heap path; they must
  // still run with their payload intact.
  static_assert(sizeof(std::array<std::uint64_t, 64>) >
                sim::SmallFn::kInlineBytes);
  Simulator sim;
  std::array<std::uint64_t, 64> big{};
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i * 31;
  std::uint64_t sum = 0;
  sim.schedule_at(time::millis(1), [big, &sum] {
    for (std::uint64_t v : big) sum += v;
  });
  sim.run();
  std::uint64_t want = 0;
  for (std::size_t i = 0; i < big.size(); ++i) want += i * 31;
  EXPECT_EQ(sum, want);
}

TEST(Simulator, SlotRecyclingKeepsArenaBounded) {
  // A schedule/run ping-pong must reuse one slot, not grow a chunk per
  // event: steady state is allocation-free.
  Simulator sim;
  std::uint64_t fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < 10'000) sim.schedule_after(time::micros(1), tick);
  };
  sim.schedule_at(Time{0}, tick);
  sim.run();
  EXPECT_EQ(fired, 10'000u);
}

TEST(Simulator, EventTraceRecordsTimeAndSeq) {
  Simulator sim;
  sim.enable_event_trace();
  sim.schedule_at(time::millis(2), [] {});
  sim.schedule_at(time::millis(1), [] {});
  EventHandle h = sim.schedule_at(time::millis(3), [] {});
  h.cancel();
  sim.run();
  ASSERT_EQ(sim.event_trace().size(), 2u);  // cancelled event not processed
  EXPECT_EQ(sim.event_trace()[0].at, time::millis(1));
  EXPECT_EQ(sim.event_trace()[0].seq, 1u);
  EXPECT_EQ(sim.event_trace()[1].at, time::millis(2));
  EXPECT_EQ(sim.event_trace()[1].seq, 0u);
  EXPECT_NE(sim.event_digest(), 0u);
}

}  // namespace
}  // namespace w11
