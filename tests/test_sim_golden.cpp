// Golden equivalence tests: the arena event engine vs the preserved
// pre-overhaul reference engine (DESIGN.md §11).
//
// The determinism contract says both engines execute the identical event
// sequence — (time, seq) is a strict total order, so any correct engine pops
// the same stream. These tests pin that down two ways:
//
//   EngineGolden.*        — synthetic random workloads (nested scheduling,
//                           cancellations, same-instant bursts) must produce
//                           bit-for-bit identical processed-event traces.
//   EngineGoldenTestbed.* — full testbed scenarios (FastACK on) must produce
//                           the identical event digest AND identical
//                           end-of-run flowsim metrics: throughput, A-MPDU
//                           size means, FastACK counters.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "scenario/testbed.hpp"
#include "sim/simulator.hpp"

namespace w11 {
namespace {

// A randomized self-scheduling workload: each event may spawn followers at
// random offsets (including zero — same-instant ties), cancel a random
// outstanding handle, or go quiet. Runs identically on any engine because
// all randomness comes from the seeded Rng.
struct WorkloadResult {
  std::vector<Simulator::ProcessedEvent> trace;
  std::uint64_t digest = 0;
  std::uint64_t processed = 0;
  Time end{};
};

WorkloadResult run_synthetic(Simulator::Engine engine, std::uint64_t seed) {
  Simulator sim(engine);
  sim.enable_event_trace();
  Rng rng(seed);
  std::vector<EventHandle> handles;
  std::uint64_t spawned = 0;

  std::function<void()> node = [&] {
    // Bounded fan-out keeps the run finite (~3k events per seed).
    if (spawned > 3000) return;
    const int kids = static_cast<int>(rng.uniform_int(0, 3));
    for (int k = 0; k < kids; ++k) {
      const Time dt = time::nanos(rng.uniform_int(0, 500));  // 0 => tie
      handles.push_back(sim.schedule_after(dt, node));
      ++spawned;
    }
    if (!handles.empty() && rng.bernoulli(0.2)) {
      handles[rng.index(handles.size())].cancel();
    }
  };
  for (int i = 0; i < 8; ++i) {
    handles.push_back(sim.schedule_at(time::nanos(i * 7), node));
    ++spawned;
  }
  sim.run();
  return {sim.event_trace(), sim.event_digest(), sim.processed_events(),
          sim.now()};
}

class EngineGolden : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineGolden, SyntheticWorkloadTracesAreIdentical) {
  const WorkloadResult arena =
      run_synthetic(Simulator::Engine::kArena, GetParam());
  const WorkloadResult ref =
      run_synthetic(Simulator::Engine::kReference, GetParam());
  EXPECT_GT(arena.processed, 100u);  // the workload actually did something
  EXPECT_EQ(arena.processed, ref.processed);
  EXPECT_EQ(arena.digest, ref.digest);
  EXPECT_EQ(arena.end, ref.end);
  ASSERT_EQ(arena.trace.size(), ref.trace.size());
  for (std::size_t i = 0; i < arena.trace.size(); ++i) {
    ASSERT_EQ(arena.trace[i], ref.trace[i]) << "divergence at event " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineGolden,
                         ::testing::Values(1u, 7u, 42u, 1337u));

// --- full-scenario equivalence ---------------------------------------------

struct TestbedResult {
  std::uint64_t digest = 0;
  std::uint64_t processed = 0;
  double throughput_mbps = 0.0;
  std::vector<double> ampdu_means;
  std::uint64_t fast_acks = 0;
  std::uint64_t local_retransmits = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t acks_suppressed = 0;
};

TestbedResult run_testbed(Simulator::Engine engine, std::uint64_t seed) {
  scenario::TestbedConfig cfg;
  cfg.engine = engine;
  cfg.seed = seed;
  cfg.n_aps = 1;
  cfg.n_clients_per_ap = 4;
  cfg.fastack = {true};
  cfg.duration = time::seconds(2);
  cfg.warmup = time::millis(500);
  scenario::Testbed tb(cfg);
  tb.simulator().enable_event_trace(/*capacity=*/0);  // digest only
  tb.run();

  TestbedResult r;
  r.digest = tb.simulator().event_digest();
  r.processed = tb.simulator().processed_events();
  r.throughput_mbps = tb.aggregate_throughput_mbps();
  r.ampdu_means = tb.mean_ampdu_per_client(0);
  const fastack::FlowStats& fs = tb.agent(0)->stats();
  r.fast_acks = fs.fast_acks_sent;
  r.local_retransmits = fs.local_retransmits;
  r.cache_evictions = fs.cache_evictions;
  r.acks_suppressed = tb.ap(0).stats().acks_suppressed;
  return r;
}

class EngineGoldenTestbed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineGoldenTestbed, FlowsimMetricsMatchReferenceEngine) {
  const TestbedResult arena =
      run_testbed(Simulator::Engine::kArena, GetParam());
  const TestbedResult ref =
      run_testbed(Simulator::Engine::kReference, GetParam());

  // Same execution, event for event.
  EXPECT_EQ(arena.digest, ref.digest);
  EXPECT_EQ(arena.processed, ref.processed);
  EXPECT_GT(arena.processed, 10'000u);  // a real run, not a degenerate one

  // Same end-of-run flowsim metrics, bit for bit (identical execution means
  // identical arithmetic — no tolerance needed).
  EXPECT_EQ(arena.throughput_mbps, ref.throughput_mbps);
  EXPECT_GT(arena.throughput_mbps, 0.0);
  ASSERT_EQ(arena.ampdu_means.size(), ref.ampdu_means.size());
  for (std::size_t i = 0; i < arena.ampdu_means.size(); ++i)
    EXPECT_EQ(arena.ampdu_means[i], ref.ampdu_means[i]) << "client " << i;

  // Same FastACK behavior.
  EXPECT_EQ(arena.fast_acks, ref.fast_acks);
  EXPECT_GT(arena.fast_acks, 0u);
  EXPECT_EQ(arena.local_retransmits, ref.local_retransmits);
  EXPECT_EQ(arena.cache_evictions, ref.cache_evictions);
  EXPECT_EQ(arena.acks_suppressed, ref.acks_suppressed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineGoldenTestbed,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace w11
