// Unit and integration tests for the TCP-Snoop baseline agent (§5.3).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/snoop/snoop_agent.hpp"
#include "scenario/testbed.hpp"

namespace w11 {
namespace {

using snoop::SnoopAgent;

class SnoopRig : public ::testing::Test {
 protected:
  void SetUp() override {
    medium_ = std::make_unique<mac::Medium>(sim_, mac::MediumConfig{}, Rng(1));
    AccessPoint::Config acfg;
    acfg.id = ApId{0};
    ap_ = std::make_unique<AccessPoint>(sim_, *medium_, acfg, Rng(2));
    ClientStation::Config ccfg;
    ccfg.id = StationId{3};
    ccfg.pos = Position{4, 0};
    client_ = std::make_unique<ClientStation>(sim_, *medium_, ccfg, Rng(3));
    ap_->associate(client_.get());
    agent_ = std::make_unique<SnoopAgent>(sim_, *ap_, SnoopAgent::Config{});
    ap_->set_interceptor(agent_.get());
    ap_->set_wire_out([this](TcpSegment s) { wire_.push_back(std::move(s)); });
  }

  static TcpSegment data(std::uint64_t seq, std::uint32_t len = 1460) {
    TcpSegment seg;
    seg.flow = FlowId{1};
    seg.dst_station = StationId{3};
    seg.seq = seq;
    seg.payload = len;
    return seg;
  }

  static TcpSegment ack(std::uint64_t ackno) {
    TcpSegment a;
    a.flow = FlowId{1};
    a.is_ack = true;
    a.ack = ackno;
    a.rwnd = 1 << 20;
    return a;
  }

  Simulator sim_;
  std::unique_ptr<mac::Medium> medium_;
  std::unique_ptr<AccessPoint> ap_;
  std::unique_ptr<ClientStation> client_;
  std::unique_ptr<SnoopAgent> agent_;
  std::vector<TcpSegment> wire_;
};

TEST_F(SnoopRig, CachesForwardedData) {
  for (int i = 0; i < 4; ++i) {
    TcpSegment seg = data(1460u * static_cast<std::uint64_t>(i));
    EXPECT_EQ(agent_->on_downlink_data(seg), TcpInterceptor::DataAction::kForward);
  }
  const auto* f = agent_->flow(FlowId{1});
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->cache.size(), 4u);
  EXPECT_EQ(f->seq_exp, 4u * 1460u);
}

TEST_F(SnoopRig, SenderRetransmissionsArePrioritized) {
  TcpSegment a = data(0), b = data(1460);
  agent_->on_downlink_data(a);
  agent_->on_downlink_data(b);
  TcpSegment retx = data(0);
  EXPECT_EQ(agent_->on_downlink_data(retx),
            TcpInterceptor::DataAction::kForwardPriority);
}

TEST_F(SnoopRig, NewAcksPassThroughAndEvict) {
  TcpSegment a = data(0), b = data(1460);
  agent_->on_downlink_data(a);
  agent_->on_downlink_data(b);
  EXPECT_FALSE(agent_->on_uplink_ack(ack(1460)));  // not suppressed
  const auto* f = agent_->flow(FlowId{1});
  EXPECT_EQ(f->cache.size(), 1u);  // segment 0 evicted
  EXPECT_EQ(f->last_ack, 1460u);
  EXPECT_EQ(agent_->stats().acks_passed, 1u);
}

TEST_F(SnoopRig, DupAcksSuppressedAndServedLocally) {
  for (int i = 0; i < 3; ++i) {
    TcpSegment seg = data(1460u * static_cast<std::uint64_t>(i));
    agent_->on_downlink_data(seg);
  }
  (void)agent_->on_uplink_ack(ack(1460));
  const std::size_t depth_before = ap_->queue_depth(StationId{3});
  // Client missing segment at 1460: duplicate ACK must be suppressed and
  // the cached copies re-injected.
  EXPECT_TRUE(agent_->on_uplink_ack(ack(1460)));
  EXPECT_GT(agent_->stats().local_retransmits, 0u);
  EXPECT_EQ(agent_->stats().dupacks_suppressed, 1u);
  EXPECT_GT(ap_->queue_depth(StationId{3}), depth_before);
}

TEST_F(SnoopRig, DupAckForUncachedDataPassesThrough) {
  TcpSegment seg = data(1460);  // flow starts at 1460; nothing cached at 0
  agent_->on_downlink_data(seg);
  // Force last_ack to 1460 then dupack below the cache window... a dupack
  // at the flow's initial point with an empty cache entry must reach the
  // sender (Snoop cannot help).
  const auto* f = agent_->flow(FlowId{1});
  ASSERT_NE(f, nullptr);
  (void)agent_->on_uplink_ack(ack(2920));  // evicts everything
  EXPECT_FALSE(agent_->on_uplink_ack(ack(2920)));  // dup, but cache empty
}

TEST_F(SnoopRig, UnknownFlowNeverTouched) {
  TcpSegment a = ack(500);
  a.flow = FlowId{9};
  EXPECT_FALSE(agent_->on_uplink_ack(a));
}

TEST_F(SnoopRig, RetransmissionRateLimited) {
  for (int i = 0; i < 3; ++i) {
    TcpSegment seg = data(1460u * static_cast<std::uint64_t>(i));
    agent_->on_downlink_data(seg);
  }
  (void)agent_->on_uplink_ack(ack(1460));
  (void)agent_->on_uplink_ack(ack(1460));  // dup -> burst
  const auto first = agent_->stats().local_retransmits;
  EXPECT_GT(first, 0u);
  (void)agent_->on_uplink_ack(ack(1460));  // within holdoff -> no repeat
  EXPECT_EQ(agent_->stats().local_retransmits, first);
}

// ------------------------------------------------------------ scenario --

TEST(SnoopIntegration, HidesLossFromSenderOnLossyCell) {
  auto loss_events = [](scenario::TcpAccel accel) {
    scenario::TestbedConfig cfg;
    cfg.n_clients_per_ap = 6;
    cfg.duration = time::seconds(4);
    cfg.accel = {accel};
    cfg.client_min_dist_m = 20.0;
    cfg.client_max_dist_m = 40.0;
    cfg.rate_control.fading_sigma = 3.0;
    cfg.bad_hint_rate = 0.01;
    cfg.seed = 19;
    scenario::Testbed tb(cfg);
    tb.run();
    std::uint64_t events = 0;
    for (int c = 0; c < 6; ++c) {
      const auto& s = tb.sender(0, c).stats();
      events += s.fast_retransmits + s.rto_events;
    }
    return events;
  };
  EXPECT_LT(loss_events(scenario::TcpAccel::kSnoop),
            loss_events(scenario::TcpAccel::kNone));
}

TEST(SnoopIntegration, FastAckStillBeatsSnoopOnThroughput) {
  auto thr = [](scenario::TcpAccel accel) {
    scenario::TestbedConfig cfg;
    cfg.n_clients_per_ap = 10;
    cfg.duration = time::seconds(4);
    cfg.accel = {accel};
    cfg.seed = 19;
    scenario::Testbed tb(cfg);
    tb.run();
    return tb.aggregate_throughput_mbps();
  };
  EXPECT_GT(thr(scenario::TcpAccel::kFastAck),
            thr(scenario::TcpAccel::kSnoop) * 1.05);
}

TEST(SnoopIntegration, DataIntegrityPreserved) {
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 4;
  cfg.duration = time::seconds(4);
  cfg.accel = {scenario::TcpAccel::kSnoop};
  cfg.bad_hint_rate = 0.02;
  cfg.seed = 23;
  scenario::Testbed tb(cfg);
  tb.run();
  for (int c = 0; c < 4; ++c) {
    const auto* rx = tb.client(0, c).receiver(FlowId{static_cast<std::uint32_t>(c)});
    ASSERT_NE(rx, nullptr);
    EXPECT_GT(rx->bytes_delivered(), 500'000u);
    EXPECT_EQ(rx->stats().window_overflow_drops, 0u);
  }
}

}  // namespace
}  // namespace w11
