// Unit tests for the LittleTable time-series store and collector.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "flowsim/network.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/fleet_ingest.hpp"
#include "telemetry/littletable.hpp"

namespace w11 {
namespace {

using telemetry::FleetIngest;
using telemetry::LittleTable;

LittleTable two_col() { return LittleTable("t", {"a", "b"}); }

TEST(LittleTable, SchemaEnforced) {
  EXPECT_THROW(LittleTable("bad", {}), std::logic_error);
  auto t = two_col();
  EXPECT_THROW(t.insert(0, Time{0}, {1.0}), std::logic_error);
  EXPECT_THROW(t.insert(0, Time{0}, {1.0, 2.0, 3.0}), std::logic_error);
  EXPECT_NO_THROW(t.insert(0, Time{0}, {1.0, 2.0}));
}

TEST(LittleTable, UnknownColumnThrows) {
  auto t = two_col();
  t.insert(0, Time{0}, {1.0, 2.0});
  EXPECT_THROW(t.aggregate_scalar("zzz", LittleTable::Agg::kSum, Time{0}, Time{1}),
               std::logic_error);
}

TEST(LittleTable, RangeQueryInclusive) {
  auto t = two_col();
  for (int i = 0; i < 10; ++i)
    t.insert(0, time::seconds(i), {static_cast<double>(i), 0.0});
  const auto rows = t.query(time::seconds(3), time::seconds(6));
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows.front().values[0], 3.0);
  EXPECT_EQ(rows.back().values[0], 6.0);
}

TEST(LittleTable, EntityFilter) {
  auto t = two_col();
  t.insert(1, time::seconds(1), {10.0, 0.0});
  t.insert(2, time::seconds(1), {20.0, 0.0});
  t.insert(1, time::seconds(2), {30.0, 0.0});
  const auto rows = t.query(Time{0}, time::seconds(10), 1);
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& r : rows) EXPECT_EQ(r.entity, 1u);
}

TEST(LittleTable, OutOfOrderInsertsAreSorted) {
  auto t = two_col();
  t.insert(0, time::seconds(5), {5.0, 0.0});
  t.insert(0, time::seconds(1), {1.0, 0.0});
  t.insert(0, time::seconds(3), {3.0, 0.0});
  const auto rows = t.query(Time{0}, time::seconds(10));
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].values[0], 1.0);
  EXPECT_EQ(rows[1].values[0], 3.0);
  EXPECT_EQ(rows[2].values[0], 5.0);
}

TEST(LittleTable, Aggregations) {
  auto t = two_col();
  for (int i = 1; i <= 4; ++i)
    t.insert(0, time::seconds(i), {static_cast<double>(i), 0.0});
  const Time from = Time{0}, to = time::seconds(10);
  EXPECT_DOUBLE_EQ(t.aggregate_scalar("a", LittleTable::Agg::kSum, from, to), 10.0);
  EXPECT_DOUBLE_EQ(t.aggregate_scalar("a", LittleTable::Agg::kMean, from, to), 2.5);
  EXPECT_DOUBLE_EQ(t.aggregate_scalar("a", LittleTable::Agg::kMin, from, to), 1.0);
  EXPECT_DOUBLE_EQ(t.aggregate_scalar("a", LittleTable::Agg::kMax, from, to), 4.0);
  EXPECT_DOUBLE_EQ(t.aggregate_scalar("a", LittleTable::Agg::kCount, from, to), 4.0);
}

TEST(LittleTable, BucketedAggregation) {
  auto t = two_col();
  // Two samples per 10-second bucket.
  for (int i = 0; i < 6; ++i)
    t.insert(0, time::seconds(i * 5), {1.0, 0.0});
  const auto buckets = t.aggregate("a", LittleTable::Agg::kSum, Time{0},
                                   time::seconds(30), time::seconds(10));
  ASSERT_EQ(buckets.size(), 3u);
  for (const auto& [start, v] : buckets) EXPECT_DOUBLE_EQ(v, 2.0);
  EXPECT_EQ(buckets[1].first, time::seconds(10));
}

TEST(LittleTable, EmptyBucketsAreSkipped) {
  auto t = two_col();
  t.insert(0, time::seconds(0), {1.0, 0.0});
  t.insert(0, time::seconds(25), {1.0, 0.0});
  const auto buckets = t.aggregate("a", LittleTable::Agg::kCount, Time{0},
                                   time::seconds(30), time::seconds(10));
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].first, Time{0});
  EXPECT_EQ(buckets[1].first, time::seconds(20));
}

TEST(LittleTable, BatchAppendMatchesPerRowInserts) {
  auto a = two_col();
  auto b = two_col();

  std::vector<LittleTable::Row> batch;
  for (int i = 0; i < 50; ++i) {
    const Time at = time::seconds(i / 2);  // duplicates, still monotone
    const std::vector<double> vals = {static_cast<double>(i), i * 0.5};
    a.insert(static_cast<std::uint32_t>(i % 4), at, vals);
    batch.push_back(
        LittleTable::Row{static_cast<std::uint32_t>(i % 4), at, vals});
  }
  b.reserve_rows(batch.size());
  b.append(std::move(batch));

  ASSERT_EQ(a.row_count(), b.row_count());
  const auto ra = a.query(Time{0}, time::seconds(100));
  const auto rb = b.query(Time{0}, time::seconds(100));
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].entity, rb[i].entity);
    EXPECT_EQ(ra[i].at, rb[i].at);
    EXPECT_EQ(ra[i].values, rb[i].values);
  }
}

TEST(LittleTable, BatchAppendDetectsDisorderAcrossSeamAndWithin) {
  // Out-of-order rows arriving via append must still sort lazily, exactly
  // like insert().
  auto t = two_col();
  t.insert(0, time::seconds(5), {5.0, 0.0});
  t.append({LittleTable::Row{0, time::seconds(3), {3.0, 0.0}},
            LittleTable::Row{0, time::seconds(9), {9.0, 0.0}},
            LittleTable::Row{0, time::seconds(1), {1.0, 0.0}}});
  const auto rows = t.query(Time{0}, time::seconds(100));
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].values[0], 1.0);
  EXPECT_EQ(rows[1].values[0], 3.0);
  EXPECT_EQ(rows[2].values[0], 5.0);
  EXPECT_EQ(rows[3].values[0], 9.0);
}

TEST(LittleTable, BatchAppendValidatesSchema) {
  auto t = two_col();
  EXPECT_THROW(t.append({LittleTable::Row{0, Time{0}, {1.0}}}),
               std::logic_error);
  EXPECT_EQ(t.row_count(), 0u);  // a bad batch is rejected atomically
  EXPECT_NO_THROW(t.append({}));
}

TEST(LittleTable, RetentionTrim) {
  auto t = two_col();
  for (int i = 0; i < 10; ++i)
    t.insert(0, time::seconds(i), {static_cast<double>(i), 0.0});
  t.trim_before(time::seconds(7));
  EXPECT_EQ(t.row_count(), 3u);
  const auto rows = t.query(Time{0}, time::seconds(100));
  EXPECT_EQ(rows.front().values[0], 7.0);
}

TEST(LittleTable, AggregateOverEmptyRangeIsZero) {
  auto t = two_col();
  EXPECT_DOUBLE_EQ(
      t.aggregate_scalar("a", LittleTable::Agg::kSum, Time{0}, time::seconds(5)),
      0.0);
}

TEST(LittleTable, QuantileAggregation) {
  auto t = two_col();
  // 1..100 in one bucket: interpolated p50 / p95 match Samples::quantile
  // (pos = q·(n−1) with linear interpolation).
  for (int i = 1; i <= 100; ++i)
    t.insert(0, time::seconds(i), {static_cast<double>(i), 0.0});
  Samples ref;
  for (int i = 1; i <= 100; ++i) ref.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(t.aggregate_scalar("a", LittleTable::Agg::kP50, Time{0},
                                      time::seconds(200)),
                   ref.quantile(0.50));
  EXPECT_DOUBLE_EQ(t.aggregate_scalar("a", LittleTable::Agg::kP95, Time{0},
                                      time::seconds(200)),
                   ref.quantile(0.95));
}

TEST(LittleTable, QuantileBucketsAndSingletons) {
  auto t = two_col();
  // Bucket 1 holds {10, 20, 30}; bucket 2 holds {100} (singleton).
  t.insert(0, time::seconds(1), {10.0, 0.0});
  t.insert(0, time::seconds(2), {20.0, 0.0});
  t.insert(0, time::seconds(3), {30.0, 0.0});
  t.insert(0, time::seconds(11), {100.0, 0.0});
  const auto p50 = t.aggregate("a", LittleTable::Agg::kP50, Time{0},
                               time::seconds(20), time::seconds(10));
  ASSERT_EQ(p50.size(), 2u);
  EXPECT_DOUBLE_EQ(p50[0].second, 20.0);
  EXPECT_DOUBLE_EQ(p50[1].second, 100.0);
  const auto p95 = t.aggregate("a", LittleTable::Agg::kP95, Time{0},
                               time::seconds(20), time::seconds(10));
  // p95 of {10,20,30}: pos = 0.95*2 = 1.9 -> 20*(0.1) + 30*(0.9) = 29.
  EXPECT_DOUBLE_EQ(p95[0].second, 29.0);
}

TEST(LittleTable, QuantileWithOutOfOrderInserts) {
  // The quantile sorts the bucket's values, so insertion order (and the
  // lazy time-sort it triggers) must not matter.
  auto in_order = two_col();
  auto shuffled = two_col();
  const double vals[] = {5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0};
  for (int i = 0; i < 9; ++i)
    in_order.insert(0, time::seconds(i), {static_cast<double>(i + 1), 0.0});
  for (int i = 0; i < 9; ++i) {
    // Timestamps deliberately not monotone.
    shuffled.insert(0, time::seconds(8 - i), {vals[i], 0.0});
  }
  EXPECT_DOUBLE_EQ(shuffled.aggregate_scalar("a", LittleTable::Agg::kP50,
                                             Time{0}, time::seconds(100)),
                   in_order.aggregate_scalar("a", LittleTable::Agg::kP50,
                                             Time{0}, time::seconds(100)));
  EXPECT_DOUBLE_EQ(shuffled.aggregate_scalar("a", LittleTable::Agg::kP95,
                                             Time{0}, time::seconds(100)),
                   in_order.aggregate_scalar("a", LittleTable::Agg::kP95,
                                             Time{0}, time::seconds(100)));
}

TEST(LittleTable, QuantileAfterRetentionTrim) {
  auto t = two_col();
  for (int i = 0; i < 10; ++i)
    t.insert(0, time::seconds(i), {static_cast<double>(i * 10), 0.0});
  t.trim_before(time::seconds(5));  // survivors: 50, 60, 70, 80, 90
  EXPECT_DOUBLE_EQ(t.aggregate_scalar("a", LittleTable::Agg::kP50, Time{0},
                                      time::seconds(100)),
                   70.0);
  // p95 of {50..90}: pos = 0.95*4 = 3.8 -> 80*0.2 + 90*0.8 = 88.
  EXPECT_DOUBLE_EQ(t.aggregate_scalar("a", LittleTable::Agg::kP95, Time{0},
                                      time::seconds(100)),
                   88.0);
}

TEST(LittleTable, RetentionWindowTrimsByAgeAtIngest) {
  auto t = two_col();
  t.set_retention({/*max_age=*/time::seconds(10), /*max_rows=*/0});
  for (int i = 0; i <= 60; ++i)
    t.insert(0, time::seconds(i), {static_cast<double>(i), 0.0});
  // Compaction is amortized (slack = max_age/8), so allow the overhang, but
  // the window must be roughly max_age, not the full 61 rows.
  EXPECT_LE(t.row_count(), 13u);  // 11 in-window + slack
  EXPECT_GE(t.row_count(), 11u);
  EXPECT_GT(t.rows_trimmed(), 0u);
  // The newest rows always survive.
  const auto rows = t.query(Time{0}, time::seconds(100));
  EXPECT_EQ(rows.back().values[0], 60.0);
  EXPECT_GE(rows.front().values[0], 60.0 - 13.0);
}

TEST(LittleTable, RetentionWindowCapsRowCount) {
  auto t = two_col();
  t.set_retention({/*max_age=*/Time{0}, /*max_rows=*/16});
  for (int i = 0; i < 200; ++i)
    t.insert(0, time::seconds(i), {static_cast<double>(i), 0.0});
  EXPECT_LE(t.row_count(), 16u + 2u);  // cap + kCompactSlack/row-slack
  EXPECT_EQ(t.rows_trimmed() + t.row_count(), 200u);
  EXPECT_EQ(t.query(Time{0}, time::seconds(1000)).back().values[0], 199.0);
}

TEST(LittleTable, SetRetentionEnforcesImmediately) {
  auto t = two_col();
  for (int i = 0; i < 100; ++i)
    t.insert(0, time::seconds(i), {static_cast<double>(i), 0.0});
  ASSERT_EQ(t.row_count(), 100u);
  t.set_retention({time::seconds(20), 10});
  // Age bound first (rows newer than 99-20=79s), then the row cap.
  EXPECT_EQ(t.row_count(), 10u);
  EXPECT_EQ(t.rows_trimmed(), 90u);
  const auto rows = t.query(Time{0}, time::seconds(1000));
  EXPECT_EQ(rows.front().values[0], 90.0);
  EXPECT_EQ(rows.back().values[0], 99.0);
}

TEST(LittleTable, QuantilesOverTrimmedWindowMatchAFreshTable) {
  // Trim correctness for the interpolated aggregates: whatever rows survive
  // retention, kP50/kP95 over them must equal the same query on a table
  // built from only those rows — trimming must not disturb the sort index
  // or leave phantom values behind.
  auto t = two_col();
  t.set_retention({time::seconds(30), 0});
  Rng rng(7);
  for (int i = 0; i < 500; ++i)
    t.insert(0, time::seconds(i), {rng.uniform(0.0, 100.0), 0.0});
  const auto survivors = t.query(Time{0}, time::seconds(10000));
  ASSERT_FALSE(survivors.empty());
  ASSERT_LT(survivors.size(), 500u);
  auto fresh = two_col();
  for (const auto& r : survivors) fresh.insert(r.entity, r.at, r.values);
  for (const auto agg : {LittleTable::Agg::kP50, LittleTable::Agg::kP95,
                         LittleTable::Agg::kMean, LittleTable::Agg::kSum}) {
    EXPECT_DOUBLE_EQ(
        t.aggregate_scalar("a", agg, Time{0}, time::seconds(10000)),
        fresh.aggregate_scalar("a", agg, Time{0}, time::seconds(10000)));
  }
}

TEST(Collector, RecordsPerApAndNetworkRows) {
  flowsim::Network::Config cfg;
  cfg.prop.shadowing_sigma = 0.0;
  flowsim::Network net(cfg);
  const ApId a =
      net.add_ap({0, 0}, ChannelWidth::MHz80, {Band::G5, 42, ChannelWidth::MHz80});
  net.add_client(a, {3, 0},
                 {WifiStandard::k80211ac, true, ChannelWidth::MHz80, 2, true, true},
                 5.0);
  telemetry::NetworkCollector col;
  const auto ev = net.evaluate();
  col.record(net, ev, time::minutes(1));
  col.record(net, ev, time::minutes(2));
  EXPECT_EQ(col.ap_stats().row_count(), 2u);
  EXPECT_EQ(col.net_stats().row_count(), 2u);
  const double thr = col.ap_stats().aggregate_scalar(
      "throughput_mbps", telemetry::LittleTable::Agg::kMean, Time{0},
      time::hours(1));
  EXPECT_NEAR(thr, 5.0, 0.5);
}

TEST(Collector, DropCountersSurfaceAsColumns) {
  flowsim::Network::Config cfg;
  cfg.prop.shadowing_sigma = 0.0;
  flowsim::Network net(cfg);
  const ApId a =
      net.add_ap({0, 0}, ChannelWidth::MHz80, {Band::G5, 42, ChannelWidth::MHz80});
  net.add_client(a, {3, 0},
                 {WifiStandard::k80211ac, true, ChannelWidth::MHz80, 2, true, true},
                 5.0);
  telemetry::NetworkCollector col;
  const auto ev = net.evaluate();
  col.record(net, ev, time::minutes(1));
  col.drop_next(2);
  col.record(net, ev, time::minutes(2));  // dropped
  col.record(net, ev, time::minutes(3));  // dropped
  col.record(net, ev, time::minutes(4));
  EXPECT_EQ(col.records_written(), 2u);
  EXPECT_EQ(col.records_dropped(), 2u);
  // The dashboard's own query surface sees the same counters.
  const auto rows = col.net_stats().query(Time{0}, time::hours(1));
  ASSERT_EQ(rows.size(), 2u);
  const auto col_of = [&](const char* name) {
    const auto& cols = col.net_stats().columns();
    return static_cast<std::size_t>(
        std::find(cols.begin(), cols.end(), name) - cols.begin());
  };
  EXPECT_EQ(rows[0].values[col_of("records_dropped")], 0.0);
  EXPECT_EQ(rows[0].values[col_of("records_written")], 1.0);
  EXPECT_EQ(rows[1].values[col_of("records_dropped")], 2.0);
  EXPECT_EQ(rows[1].values[col_of("records_written")], 2.0);
}

TEST(LittleTable, RetentionCompactsAcrossOutOfOrderBatchSeams) {
  // Fleet ingest interleaves campus batches: each batch is internally
  // sorted but starts before the previous batch's end. Retention must
  // still notice over-age rows (the probe reads the tracked oldest
  // timestamp, not the sort index) and trim exactly by age.
  LittleTable t("seams", {"v"});
  t.set_retention({.max_age = time::minutes(10)});
  for (int poll = 0; poll < 40; ++poll) {
    const Time at = time::minutes(poll);
    std::vector<LittleTable::Row> campus_a, campus_b;
    for (std::uint32_t e = 0; e < 4; ++e)
      campus_a.push_back({e, at, {1.0}});
    for (std::uint32_t e = 100; e < 104; ++e)
      campus_b.push_back({e, at, {2.0}});
    t.append(std::move(campus_a));
    t.append(std::move(campus_b));  // same timestamps: a seam every poll
  }
  EXPECT_GT(t.rows_trimmed(), 0u) << "age probe never saw the old rows";
  const auto rows = t.query(Time{0}, time::hours(2));
  for (const auto& r : rows)
    EXPECT_GE(r.at,
              time::minutes(39) - time::minutes(10) -
                  time::minutes(10) /
                      static_cast<std::int64_t>(LittleTable::kCompactSlack));
}

TEST(FleetIngestTest, BatchedScanIngestLandsOneRowPerAp) {
  FleetIngest ingest;
  std::vector<ApScan> scans(3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    scans[i].id = ApId(i + 10);
    scans[i].utilization_current = 0.1 * static_cast<double>(i);
  }
  scans[0].neighbors.push_back(NeighborReport{ApId(11), -60.0});
  ingest.ingest_scans(10, scans, time::minutes(1));
  ingest.ingest_scans(10, scans, time::minutes(2));
  EXPECT_EQ(ingest.rows_ingested(), 6u);
  const auto rows = ingest.ap_stats().query(Time{0}, time::hours(1));
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].entity, 10u);
  EXPECT_EQ(rows[0].values[0], 10.0);  // campus column
  EXPECT_EQ(rows[0].values[3], 1.0);   // neighbor count
}

TEST(FleetIngestTest, PlanRowsCarryDeliveryMetadata) {
  FleetIngest ingest;
  ingest.ingest_plan(7, time::minutes(1), 12, -3.5, true, 0.01);
  ingest.ingest_plan(9, time::minutes(2), 8, -1.0, false, 0.02);
  EXPECT_EQ(ingest.plans_ingested(), 2u);
  const auto rows = ingest.plan_stats().query(Time{0}, time::hours(1));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].entity, 7u);
  EXPECT_EQ(rows[0].values[0], 12.0);
  EXPECT_EQ(rows[0].values[2], 1.0);
  EXPECT_EQ(rows[1].values[2], 0.0);
}

}  // namespace
}  // namespace w11
