// Unit tests for the LittleTable time-series store and collector.

#include <gtest/gtest.h>

#include "flowsim/network.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/littletable.hpp"

namespace w11 {
namespace {

using telemetry::LittleTable;

LittleTable two_col() { return LittleTable("t", {"a", "b"}); }

TEST(LittleTable, SchemaEnforced) {
  EXPECT_THROW(LittleTable("bad", {}), std::logic_error);
  auto t = two_col();
  EXPECT_THROW(t.insert(0, Time{0}, {1.0}), std::logic_error);
  EXPECT_THROW(t.insert(0, Time{0}, {1.0, 2.0, 3.0}), std::logic_error);
  EXPECT_NO_THROW(t.insert(0, Time{0}, {1.0, 2.0}));
}

TEST(LittleTable, UnknownColumnThrows) {
  auto t = two_col();
  t.insert(0, Time{0}, {1.0, 2.0});
  EXPECT_THROW(t.aggregate_scalar("zzz", LittleTable::Agg::kSum, Time{0}, Time{1}),
               std::logic_error);
}

TEST(LittleTable, RangeQueryInclusive) {
  auto t = two_col();
  for (int i = 0; i < 10; ++i)
    t.insert(0, time::seconds(i), {static_cast<double>(i), 0.0});
  const auto rows = t.query(time::seconds(3), time::seconds(6));
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows.front().values[0], 3.0);
  EXPECT_EQ(rows.back().values[0], 6.0);
}

TEST(LittleTable, EntityFilter) {
  auto t = two_col();
  t.insert(1, time::seconds(1), {10.0, 0.0});
  t.insert(2, time::seconds(1), {20.0, 0.0});
  t.insert(1, time::seconds(2), {30.0, 0.0});
  const auto rows = t.query(Time{0}, time::seconds(10), 1);
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& r : rows) EXPECT_EQ(r.entity, 1u);
}

TEST(LittleTable, OutOfOrderInsertsAreSorted) {
  auto t = two_col();
  t.insert(0, time::seconds(5), {5.0, 0.0});
  t.insert(0, time::seconds(1), {1.0, 0.0});
  t.insert(0, time::seconds(3), {3.0, 0.0});
  const auto rows = t.query(Time{0}, time::seconds(10));
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].values[0], 1.0);
  EXPECT_EQ(rows[1].values[0], 3.0);
  EXPECT_EQ(rows[2].values[0], 5.0);
}

TEST(LittleTable, Aggregations) {
  auto t = two_col();
  for (int i = 1; i <= 4; ++i)
    t.insert(0, time::seconds(i), {static_cast<double>(i), 0.0});
  const Time from = Time{0}, to = time::seconds(10);
  EXPECT_DOUBLE_EQ(t.aggregate_scalar("a", LittleTable::Agg::kSum, from, to), 10.0);
  EXPECT_DOUBLE_EQ(t.aggregate_scalar("a", LittleTable::Agg::kMean, from, to), 2.5);
  EXPECT_DOUBLE_EQ(t.aggregate_scalar("a", LittleTable::Agg::kMin, from, to), 1.0);
  EXPECT_DOUBLE_EQ(t.aggregate_scalar("a", LittleTable::Agg::kMax, from, to), 4.0);
  EXPECT_DOUBLE_EQ(t.aggregate_scalar("a", LittleTable::Agg::kCount, from, to), 4.0);
}

TEST(LittleTable, BucketedAggregation) {
  auto t = two_col();
  // Two samples per 10-second bucket.
  for (int i = 0; i < 6; ++i)
    t.insert(0, time::seconds(i * 5), {1.0, 0.0});
  const auto buckets = t.aggregate("a", LittleTable::Agg::kSum, Time{0},
                                   time::seconds(30), time::seconds(10));
  ASSERT_EQ(buckets.size(), 3u);
  for (const auto& [start, v] : buckets) EXPECT_DOUBLE_EQ(v, 2.0);
  EXPECT_EQ(buckets[1].first, time::seconds(10));
}

TEST(LittleTable, EmptyBucketsAreSkipped) {
  auto t = two_col();
  t.insert(0, time::seconds(0), {1.0, 0.0});
  t.insert(0, time::seconds(25), {1.0, 0.0});
  const auto buckets = t.aggregate("a", LittleTable::Agg::kCount, Time{0},
                                   time::seconds(30), time::seconds(10));
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].first, Time{0});
  EXPECT_EQ(buckets[1].first, time::seconds(20));
}

TEST(LittleTable, BatchAppendMatchesPerRowInserts) {
  auto a = two_col();
  auto b = two_col();

  std::vector<LittleTable::Row> batch;
  for (int i = 0; i < 50; ++i) {
    const Time at = time::seconds(i / 2);  // duplicates, still monotone
    const std::vector<double> vals = {static_cast<double>(i), i * 0.5};
    a.insert(static_cast<std::uint32_t>(i % 4), at, vals);
    batch.push_back(
        LittleTable::Row{static_cast<std::uint32_t>(i % 4), at, vals});
  }
  b.reserve_rows(batch.size());
  b.append(std::move(batch));

  ASSERT_EQ(a.row_count(), b.row_count());
  const auto ra = a.query(Time{0}, time::seconds(100));
  const auto rb = b.query(Time{0}, time::seconds(100));
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].entity, rb[i].entity);
    EXPECT_EQ(ra[i].at, rb[i].at);
    EXPECT_EQ(ra[i].values, rb[i].values);
  }
}

TEST(LittleTable, BatchAppendDetectsDisorderAcrossSeamAndWithin) {
  // Out-of-order rows arriving via append must still sort lazily, exactly
  // like insert().
  auto t = two_col();
  t.insert(0, time::seconds(5), {5.0, 0.0});
  t.append({LittleTable::Row{0, time::seconds(3), {3.0, 0.0}},
            LittleTable::Row{0, time::seconds(9), {9.0, 0.0}},
            LittleTable::Row{0, time::seconds(1), {1.0, 0.0}}});
  const auto rows = t.query(Time{0}, time::seconds(100));
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].values[0], 1.0);
  EXPECT_EQ(rows[1].values[0], 3.0);
  EXPECT_EQ(rows[2].values[0], 5.0);
  EXPECT_EQ(rows[3].values[0], 9.0);
}

TEST(LittleTable, BatchAppendValidatesSchema) {
  auto t = two_col();
  EXPECT_THROW(t.append({LittleTable::Row{0, Time{0}, {1.0}}}),
               std::logic_error);
  EXPECT_EQ(t.row_count(), 0u);  // a bad batch is rejected atomically
  EXPECT_NO_THROW(t.append({}));
}

TEST(LittleTable, RetentionTrim) {
  auto t = two_col();
  for (int i = 0; i < 10; ++i)
    t.insert(0, time::seconds(i), {static_cast<double>(i), 0.0});
  t.trim_before(time::seconds(7));
  EXPECT_EQ(t.row_count(), 3u);
  const auto rows = t.query(Time{0}, time::seconds(100));
  EXPECT_EQ(rows.front().values[0], 7.0);
}

TEST(LittleTable, AggregateOverEmptyRangeIsZero) {
  auto t = two_col();
  EXPECT_DOUBLE_EQ(
      t.aggregate_scalar("a", LittleTable::Agg::kSum, Time{0}, time::seconds(5)),
      0.0);
}

TEST(Collector, RecordsPerApAndNetworkRows) {
  flowsim::Network::Config cfg;
  cfg.prop.shadowing_sigma = 0.0;
  flowsim::Network net(cfg);
  const ApId a =
      net.add_ap({0, 0}, ChannelWidth::MHz80, {Band::G5, 42, ChannelWidth::MHz80});
  net.add_client(a, {3, 0},
                 {WifiStandard::k80211ac, true, ChannelWidth::MHz80, 2, true, true},
                 5.0);
  telemetry::NetworkCollector col;
  const auto ev = net.evaluate();
  col.record(net, ev, time::minutes(1));
  col.record(net, ev, time::minutes(2));
  EXPECT_EQ(col.ap_stats().row_count(), 2u);
  EXPECT_EQ(col.net_stats().row_count(), 2u);
  const double thr = col.ap_stats().aggregate_scalar(
      "throughput_mbps", telemetry::LittleTable::Agg::kMean, Time{0},
      time::hours(1));
  EXPECT_NEAR(thr, 5.0, 0.5);
}

}  // namespace
}  // namespace w11
