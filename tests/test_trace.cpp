// Tests for the FastACK debug-trace facility (paper fn. 9).

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/fastack/agent.hpp"
#include "core/fastack/trace.hpp"
#include "scenario/testbed.hpp"

namespace w11 {
namespace {

using fastack::TraceEvent;
using fastack::TraceRecord;
using fastack::TraceRing;

TEST(TraceRing, KeepsChronologicalOrder) {
  TraceRing ring(8);
  for (int i = 0; i < 5; ++i)
    ring.record({time::millis(i), FlowId{1}, TraceEvent::kFastAck,
                 static_cast<std::uint64_t>(i), 0});
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(snap[i].seq, static_cast<std::uint64_t>(i));
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRing, EvictsOldestWhenFull) {
  TraceRing ring(4);
  for (int i = 0; i < 10; ++i)
    ring.record({time::millis(i), FlowId{1}, TraceEvent::kAirAck,
                 static_cast<std::uint64_t>(i), 0});
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  const auto snap = ring.snapshot();
  EXPECT_EQ(snap.front().seq, 6u);
  EXPECT_EQ(snap.back().seq, 9u);
}

TEST(TraceRing, ClearResets) {
  TraceRing ring(4);
  for (int i = 0; i < 10; ++i)
    ring.record({Time{}, FlowId{1}, TraceEvent::kAirAck, 0, 0});
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRecord, RendersHumanReadable) {
  const TraceRecord r{time::millis(3), FlowId{7}, TraceEvent::kLocalRetransmit,
                      1460, 1460};
  const std::string s = r.to_string();
  EXPECT_NE(s.find("local-retx"), std::string::npos);
  EXPECT_NE(s.find("flow7"), std::string::npos);
  EXPECT_NE(s.find("seq=1460"), std::string::npos);
}

TEST(TraceRing, DumpMentionsEvictions) {
  TraceRing ring(2);
  for (int i = 0; i < 5; ++i)
    ring.record({Time{}, FlowId{1}, TraceEvent::kFastAck, 0, 0});
  std::ostringstream os;
  ring.dump(os);
  EXPECT_NE(os.str().find("3 older records evicted"), std::string::npos);
}

TEST(TraceEventNames, AllDistinct) {
  std::set<std::string> names;
  for (int e = 0; e <= static_cast<int>(TraceEvent::kMpduDropped); ++e)
    names.insert(to_string(static_cast<TraceEvent>(e)));
  EXPECT_EQ(names.size(),
            static_cast<std::size_t>(TraceEvent::kMpduDropped) + 1);
}

// ----------------------------------------------------- agent integration --

TEST(AgentTracing, DisabledByDefault) {
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 2;
  cfg.duration = time::seconds(1);
  cfg.fastack = {true};
  scenario::Testbed tb(cfg);
  tb.run();
  EXPECT_EQ(tb.agent(0)->trace_ring().size(), 0u);
}

TEST(AgentTracing, RecordsTheExpectedEventSequence) {
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 2;
  cfg.duration = time::millis(500);
  cfg.warmup = time::millis(0);
  cfg.fastack = {true};
  cfg.agent.trace_enabled = true;
  cfg.agent.trace_capacity = 1 << 20;  // hold the whole run
  scenario::Testbed tb(cfg);
  tb.run();

  const auto snap = tb.agent(0)->trace_ring().snapshot();
  ASSERT_GT(snap.size(), 100u);

  // Every event class of the steady state shows up.
  std::map<TraceEvent, int> counts;
  for (const auto& r : snap) ++counts[r.event];
  EXPECT_EQ(counts[TraceEvent::kFlowCreated], 2);
  EXPECT_GT(counts[TraceEvent::kDataInOrder], 50);
  EXPECT_GT(counts[TraceEvent::kAirAck], 50);
  EXPECT_GT(counts[TraceEvent::kFastAck], 50);
  EXPECT_GT(counts[TraceEvent::kClientAckSuppressed], 10);

  // The very first event of a flow is its creation.
  EXPECT_EQ(snap.front().event, TraceEvent::kFlowCreated);

  // Timestamps are non-decreasing.
  for (std::size_t i = 1; i < snap.size(); ++i)
    EXPECT_GE(snap[i].at, snap[i - 1].at);
}

TEST(AgentTracing, CapturesLossRecoveryStory) {
  // With bad hints the ring must show client dupacks followed by local
  // retransmissions — the §5.5.1 recovery in one readable dump.
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 2;
  cfg.duration = time::seconds(2);
  cfg.fastack = {true};
  cfg.bad_hint_rate = 0.05;
  cfg.agent.trace_enabled = true;
  cfg.agent.trace_capacity = 1 << 18;
  cfg.seed = 11;
  scenario::Testbed tb(cfg);
  tb.run();

  const auto snap = tb.agent(0)->trace_ring().snapshot();
  bool saw_dupack_then_retx = false;
  for (std::size_t i = 0; i + 1 < snap.size() && !saw_dupack_then_retx; ++i) {
    if (snap[i].event == TraceEvent::kClientDupAck) {
      for (std::size_t j = i + 1; j < std::min(snap.size(), i + 8); ++j) {
        if (snap[j].event == TraceEvent::kLocalRetransmit) {
          saw_dupack_then_retx = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(saw_dupack_then_retx);
}

}  // namespace
}  // namespace w11
