// Unit tests for TurboCA: NodeP/NetP, ACC, NBO, schedules, DFS rules.

#include <gtest/gtest.h>

#include "core/turboca/service.hpp"
#include "core/turboca/turboca.hpp"
#include "flowsim/network.hpp"
#include "workload/topology.hpp"

namespace w11 {
namespace {

using turboca::Params;
using turboca::TurboCA;

constexpr Channel ch36_20{Band::G5, 36, ChannelWidth::MHz20};
constexpr Channel ch149_20{Band::G5, 149, ChannelWidth::MHz20};
constexpr Channel ch42_80{Band::G5, 42, ChannelWidth::MHz80};

// Build a hand-crafted scan. `neighbors` are (id, rssi) pairs.
ApScan make_scan(std::uint32_t id, Channel current,
                 std::vector<NeighborReport> neighbors = {},
                 double load80 = 2.0) {
  ApScan s;
  s.id = ApId{id};
  s.band = Band::G5;
  s.current = current;
  s.max_width = ChannelWidth::MHz80;
  s.has_clients = load80 > 0.0;
  if (load80 > 0.0) s.load_by_width[ChannelWidth::MHz80] = load80;
  s.neighbors = std::move(neighbors);
  for (const Channel& c : channels::us_catalog(Band::G5, ChannelWidth::MHz20))
    s.quality[c.number] = 1.0;
  return s;
}

TEST(NodeP, HeavyExternalUtilizationCollapsesMetric) {
  TurboCA tca({}, Rng(1));
  ApScan s = make_scan(0, ch36_20);
  const double clean =
      tca.node_p_log(s, ch36_20, {s}, {{s.id, ch36_20}}, {});
  s.external_util[36] = 0.98;  // channel 36 nearly saturated by others
  const double busy =
      tca.node_p_log(s, ch36_20, {s}, {{s.id, ch36_20}}, {});
  EXPECT_LT(busy, clean - 1.0);
}

TEST(NodeP, CochannelNeighborsReduceMetric) {
  TurboCA tca({}, Rng(1));
  ApScan a = make_scan(0, ch36_20, {{ApId{1}, -60.0}});
  ApScan b = make_scan(1, ch36_20, {{ApId{0}, -60.0}});
  const std::vector<ApScan> scans{a, b};
  const double contended =
      tca.node_p_log(a, ch36_20, scans, {{a.id, ch36_20}, {b.id, ch36_20}}, {});
  const double isolated =
      tca.node_p_log(a, ch36_20, scans, {{a.id, ch36_20}, {b.id, ch149_20}}, {});
  EXPECT_GT(isolated, contended);
}

TEST(NodeP, WideChannelIgnoredWhenClientsAreNarrow) {
  // Paper property (ii): if clients don't support wider widths, NodeP does
  // not increase for wider channels.
  TurboCA tca({}, Rng(1));
  ApScan s = make_scan(0, ch36_20, {}, 0.0);
  s.has_clients = true;
  s.load_by_width[ChannelWidth::MHz20] = 3.0;  // 20 MHz-only clients
  const ChannelPlan plan{{s.id, s.current}};
  const double at20 = tca.node_p_log(s, ch36_20, {s}, plan, {});
  Channel wide = ch42_80;  // same primary 20 (36), wider bond
  const double at80 = tca.node_p_log(s, wide, {s}, plan, {});
  // Width layers above 20 MHz carry zero load -> no gain (equal up to the
  // switch penalty at the 20 MHz layer, which applies to both equally here
  // because both candidates differ from current? ch36_20 == current).
  EXPECT_LE(at80, at20 + 1e-9);
}

TEST(NodeP, WideClientsRewardWideChannels) {
  TurboCA tca({}, Rng(1));
  ApScan s = make_scan(0, ch42_80, {}, 3.0);  // 80 MHz-class load
  const ChannelPlan plan{{s.id, s.current}};
  const double at80 = tca.node_p_log(s, ch42_80, {s}, plan, {});
  const double at20 = tca.node_p_log(s, ch36_20, {s}, plan, {});
  EXPECT_GT(at80, at20);
}

TEST(NodeP, SwitchPenaltyOnlyWhenChannelChanges) {
  Params p;
  p.switch_penalty = 0.2;
  TurboCA tca(p, Rng(1));
  ApScan s = make_scan(0, ch36_20, {}, 0.0);
  s.has_clients = true;
  s.load_by_width[ChannelWidth::MHz20] = 2.0;
  const ChannelPlan plan{{s.id, s.current}};
  const double stay = tca.node_p_log(s, ch36_20, {s}, plan, {});
  const double move = tca.node_p_log(s, ch149_20, {s}, plan, {});
  // Otherwise-identical clean channels: staying avoids the penalty.
  EXPECT_GT(stay, move);
}

TEST(NodeP, NoSwitchPenaltyForEmptyAps) {
  Params p;
  p.switch_penalty = 0.2;
  TurboCA tca(p, Rng(1));
  ApScan s = make_scan(0, ch36_20, {}, 0.0);  // no clients
  const ChannelPlan plan{{s.id, s.current}};
  const double stay = tca.node_p_log(s, ch36_20, {s}, plan, {});
  const double move = tca.node_p_log(s, ch149_20, {s}, plan, {});
  EXPECT_NEAR(stay, move, 1e-9);
}

TEST(NetP, SumsOverAllAps) {
  TurboCA tca({}, Rng(1));
  ApScan a = make_scan(0, ch36_20);
  ApScan b = make_scan(1, ch149_20);
  const std::vector<ApScan> scans{a, b};
  const ChannelPlan plan{{a.id, ch36_20}, {b.id, ch149_20}};
  const double total = tca.net_p_log(scans, plan);
  const double pa = tca.node_p_log(a, ch36_20, scans, plan, {});
  const double pb = tca.node_p_log(b, ch149_20, scans, plan, {});
  EXPECT_NEAR(total, pa + pb, 1e-9);
}

// --------------------------------------------------------------- ACC ----

TEST(Acc, SeparatesTwoNeighborsOntoDifferentChannels) {
  TurboCA tca({}, Rng(1));
  ApScan a = make_scan(0, ch36_20, {{ApId{1}, -55.0}});
  ApScan b = make_scan(1, ch36_20, {{ApId{0}, -55.0}});
  const std::vector<ApScan> scans{a, b};
  ChannelPlan plan{{a.id, ch36_20}, {b.id, ch36_20}};
  const Channel pick = tca.acc(b, scans, plan, {});
  EXPECT_FALSE(pick.overlaps(ch36_20)) << "picked " << pick;
}

TEST(Acc, PsiHidesNeighborChannels) {
  TurboCA tca({}, Rng(1));
  // Every non-DFS channel except 36's bond is saturated, so without ψ the
  // best move keeps clear of neighbor on 36... with ψ = {neighbor} the
  // neighbor's channel is ignored and 36 (clean) wins despite the overlap.
  ApScan a = make_scan(0, ch149_20, {{ApId{1}, -55.0}});
  ApScan b = make_scan(1, ch36_20, {{ApId{0}, -55.0}});
  for (const Channel& c : channels::us_catalog(Band::G5, ChannelWidth::MHz20)) {
    if (c.number != 36) {
      a.external_util[c.number] = 0.95;
      a.quality[c.number] = 0.05;
    }
  }
  const std::vector<ApScan> scans{a, b};
  ChannelPlan plan{{a.id, ch149_20}, {b.id, ch36_20}};
  const Channel with_psi = tca.acc(a, scans, plan, {ApId{1}});
  EXPECT_EQ(with_psi.primary20().number, 36);
}

// §4.3.2's motivating example: interferer lands on B's channel; the global
// optimum swaps A and B, which sequential assignment cannot find.
TEST(Nbo, EscapesLocalOptimumWithHopLimit) {
  Params params;
  params.switch_penalty = 0.15;
  // Neighbors A-B in range; channels limited to 36 / 149 by saturating
  // everything else.
  auto scans_for = [&](double intf_on_149_at_b) {
    ApScan a = make_scan(0, ch36_20, {{ApId{1}, -50.0}}, 2.0);
    ApScan b = make_scan(1, ch149_20, {{ApId{0}, -50.0}}, 2.0);
    for (const Channel& c :
         channels::us_catalog(Band::G5, ChannelWidth::MHz20)) {
      if (c.number == 36 || c.number == 149) continue;
      a.external_util[c.number] = 0.99;
      a.quality[c.number] = 0.05;
      b.external_util[c.number] = 0.99;
      b.quality[c.number] = 0.05;
    }
    // The interferer sits near B on channel 149 (B hears it, A does not).
    b.external_util[149] = intf_on_149_at_b;
    b.quality[149] = 1.0 - 0.6 * intf_on_149_at_b;
    return std::vector<ApScan>{a, b};
  };

  const auto scans = scans_for(0.8);
  const ChannelPlan current{{ApId{0}, ch36_20}, {ApId{1}, ch149_20}};

  TurboCA tca(params, Rng(3));
  // The globally optimal plan (A on 149, B on 36) must score higher.
  const ChannelPlan global{{ApId{0}, ch149_20}, {ApId{1}, ch36_20}};
  EXPECT_GT(tca.net_p_log(scans, global), tca.net_p_log(scans, current));

  // NBO with i >= 1 finds it (several attempts are allowed: the sweep is
  // randomized).
  bool found = false;
  for (int attempt = 0; attempt < 10 && !found; ++attempt) {
    const ChannelPlan plan = tca.nbo(scans, current, /*hop_limit=*/1);
    found = plan.at(ApId{0}).primary20().number == 149 &&
            plan.at(ApId{1}).primary20().number == 36;
  }
  EXPECT_TRUE(found);
}

TEST(Nbo, AssignsEveryAp) {
  Params params;
  TurboCA tca(params, Rng(4));
  std::vector<ApScan> scans;
  for (std::uint32_t i = 0; i < 20; ++i)
    scans.push_back(make_scan(i, ch36_20));
  ChannelPlan current;
  for (const auto& s : scans) current[s.id] = s.current;
  const ChannelPlan plan = tca.nbo(scans, current, 0);
  EXPECT_EQ(plan.size(), scans.size());
}

TEST(Run, NeverReturnsWorsePlan) {
  TurboCA tca({}, Rng(5));
  std::vector<ApScan> scans;
  for (std::uint32_t i = 0; i < 12; ++i) {
    std::vector<NeighborReport> nbrs;
    for (std::uint32_t j = 0; j < 12; ++j)
      if (j != i) nbrs.push_back({ApId{j}, -60.0});
    scans.push_back(make_scan(i, ch36_20, std::move(nbrs)));
  }
  ChannelPlan current;
  for (const auto& s : scans) current[s.id] = s.current;
  const double before = tca.net_p_log(scans, current);
  const auto result = tca.run(scans, current, 0);
  EXPECT_GE(result.netp_log, before);
  // Everyone on channel 36 is clearly improvable.
  EXPECT_TRUE(result.improved);
  EXPECT_GT(result.netp_log, before);
}

TEST(HopNeighborhood, BfsDepthIsRespected) {
  // Chain 0-1-2-3.
  std::vector<ApScan> scans;
  for (std::uint32_t i = 0; i < 4; ++i) {
    std::vector<NeighborReport> nbrs;
    if (i > 0) nbrs.push_back({ApId{i - 1}, -60.0});
    if (i < 3) nbrs.push_back({ApId{i + 1}, -60.0});
    scans.push_back(make_scan(i, ch36_20, std::move(nbrs)));
  }
  EXPECT_EQ(turboca::hop_neighborhood(scans, ApId{0}, 0).size(), 1u);
  EXPECT_EQ(turboca::hop_neighborhood(scans, ApId{0}, 1).size(), 2u);
  EXPECT_EQ(turboca::hop_neighborhood(scans, ApId{0}, 2).size(), 3u);
  EXPECT_EQ(turboca::hop_neighborhood(scans, ApId{0}, 3).size(), 4u);
  EXPECT_EQ(turboca::hop_neighborhood(scans, ApId{1}, 1).size(), 3u);
}

// ---------------------------------------------------------- DFS rules --

TEST(Dfs, ApWithActiveClientsNeverMovesToDfs) {
  TurboCA tca({}, Rng(6));
  // Saturate every non-DFS channel so a DFS channel would look ideal.
  ApScan s = make_scan(0, ch36_20, {}, 3.0);
  for (const Channel& c : channels::us_catalog(Band::G5, ChannelWidth::MHz20)) {
    if (!channels::is_dfs_20mhz(c.number)) {
      s.external_util[c.number] = 0.9;
      s.quality[c.number] = 0.3;
    }
  }
  const ChannelPlan plan{{s.id, s.current}};
  const Channel pick = tca.acc(s, {s}, plan, {});
  EXPECT_FALSE(pick.is_dfs());
}

TEST(Dfs, IdleApMayUseDfs) {
  TurboCA tca({}, Rng(7));
  ApScan s = make_scan(0, ch36_20, {}, 0.0);  // no active clients
  for (const Channel& c : channels::us_catalog(Band::G5, ChannelWidth::MHz20)) {
    if (!channels::is_dfs_20mhz(c.number)) {
      s.external_util[c.number] = 0.95;
      s.quality[c.number] = 0.1;
    }
  }
  const ChannelPlan plan{{s.id, s.current}};
  const Channel pick = tca.acc(s, {s}, plan, {});
  EXPECT_TRUE(pick.is_dfs());
}

TEST(Dfs, NonCertifiedHardwareNeverPicksDfs) {
  TurboCA tca({}, Rng(8));
  ApScan s = make_scan(0, ch36_20, {}, 0.0);
  s.dfs_capable = false;
  for (const Channel& c : channels::us_catalog(Band::G5, ChannelWidth::MHz20)) {
    if (!channels::is_dfs_20mhz(c.number)) s.external_util[c.number] = 0.95;
  }
  const ChannelPlan plan{{s.id, s.current}};
  EXPECT_FALSE(tca.acc(s, {s}, plan, {}).is_dfs());
}

// ----------------------------------------------------------- Services --

turboca::NetworkHooks hooks_for(flowsim::Network& net) {
  turboca::NetworkHooks h;
  h.scan = [&net] { return net.scan(); };
  h.current_plan = [&net] { return net.current_plan(); };
  h.apply_plan = [&net](const ChannelPlan& p) { net.apply_plan(p); };
  return h;
}

TEST(TurboCaService, ScheduleCadence) {
  workload::CampusConfig cc;
  cc.n_aps = 12;
  cc.seed = 5;
  auto net = workload::make_campus(cc);
  turboca::TurboCaService svc({}, {}, hooks_for(*net), Rng(9));

  svc.advance_to(time::minutes(5));
  EXPECT_EQ(svc.stats().runs, 0);  // nothing due yet
  svc.advance_to(time::minutes(16));
  EXPECT_EQ(svc.stats().runs, 1);  // fast tier
  svc.advance_to(time::minutes(20));
  EXPECT_EQ(svc.stats().runs, 1);  // not due again
  svc.advance_to(time::minutes(32));
  EXPECT_EQ(svc.stats().runs, 2);
  svc.advance_to(time::hours(4));
  EXPECT_EQ(svc.stats().runs, 3);  // medium tier fired once
  svc.advance_to(time::hours(30));
  EXPECT_EQ(svc.stats().runs, 4);  // slow tier
}

TEST(TurboCaService, ImprovesFreshNetworkAndCountsSwitches) {
  workload::CampusConfig cc;
  cc.n_aps = 30;
  cc.seed = 11;
  auto net = workload::make_campus(cc);  // everyone on ch36/20
  const auto before = net->evaluate();
  turboca::TurboCaService svc({}, {}, hooks_for(*net), Rng(10));
  svc.run_now({1, 0});
  const auto after = net->evaluate();
  EXPECT_GT(svc.stats().channel_switches, 0);
  EXPECT_GT(after.total_throughput_mbps, before.total_throughput_mbps);
  EXPECT_EQ(svc.stats().plans_applied, 1);
}

TEST(TurboCaService, StablePlanIsNotChurned) {
  workload::CampusConfig cc;
  cc.n_aps = 20;
  cc.seed = 13;
  auto net = workload::make_campus(cc);
  turboca::TurboCaService svc({}, {}, hooks_for(*net), Rng(11));
  svc.run_now({2, 1, 0});
  const int switches_after_converge = svc.stats().channel_switches;
  // Re-running on an unchanged network must cause little/no churn.
  svc.run_now({0});
  svc.run_now({0});
  EXPECT_LE(svc.stats().channel_switches - switches_after_converge,
            net->ap_count() / 4);
}

TEST(ReservedCaService, FixedWidthIsRespected) {
  workload::CampusConfig cc;
  cc.n_aps = 15;
  cc.seed = 17;
  auto net = workload::make_campus(cc);
  turboca::ReservedCaService::Config rcfg;
  rcfg.fixed_width = ChannelWidth::MHz40;
  turboca::ReservedCaService svc(rcfg, {}, hooks_for(*net), Rng(12));
  svc.run_now();
  for (const auto& ap : net->aps())
    EXPECT_LE(ap.channel.width, ChannelWidth::MHz40);
  EXPECT_EQ(svc.stats().runs, 1);
}

TEST(ReservedCaService, PeriodIsFiveHours) {
  workload::CampusConfig cc;
  cc.n_aps = 8;
  cc.seed = 19;
  auto net = workload::make_campus(cc);
  turboca::ReservedCaService svc({}, {}, hooks_for(*net), Rng(13));
  svc.advance_to(time::hours(4));
  EXPECT_EQ(svc.stats().runs, 0);
  svc.advance_to(time::hours(5));
  EXPECT_EQ(svc.stats().runs, 1);
  svc.advance_to(time::hours(9));
  EXPECT_EQ(svc.stats().runs, 1);
  svc.advance_to(time::hours(10));
  EXPECT_EQ(svc.stats().runs, 2);
}

TEST(Determinism, SameSeedSamePlan) {
  workload::CampusConfig cc;
  cc.n_aps = 25;
  cc.seed = 23;
  auto run_once = [&] {
    auto net = workload::make_campus(cc);
    turboca::TurboCaService svc({}, {}, hooks_for(*net), Rng(77));
    svc.run_now({1, 0});
    return net->current_plan();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace w11
