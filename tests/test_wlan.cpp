// Unit tests for wlan/: rate control, AP/client datapath.

#include <gtest/gtest.h>

#include "mac/medium.hpp"
#include "scenario/testbed.hpp"
#include "wlan/access_point.hpp"
#include "wlan/client.hpp"
#include "wlan/rate_control.hpp"

namespace w11 {
namespace {

PropagationModel no_shadow() {
  PropagationModel p;
  p.shadowing_sigma = 0.0;
  return p;
}

RateController make_rc(double dist, ClientCapability cap,
                       ChannelWidth chan_width = ChannelWidth::MHz80,
                       double fading = 0.0) {
  RateController::Config cfg;
  cfg.fading_sigma = fading;
  return RateController(no_shadow(), Position{0, 0}, Position{dist, 0},
                        Band::G5, chan_width, ApCapability{}, cap, cfg, Rng(1));
}

// -------------------------------------------------------- RateControl --

TEST(RateControl, CloserClientsGetHigherRates) {
  ClientCapability cap;
  auto near = make_rc(3.0, cap);
  auto far = make_rc(60.0, cap);
  EXPECT_GT(near.decide_txop().rate, far.decide_txop().rate);
  EXPECT_GT(near.mean_snr(), far.mean_snr());
}

TEST(RateControl, SingleStreamClientCapped) {
  ClientCapability cap;
  cap.max_nss = 1;
  auto rc = make_rc(2.0, cap);
  EXPECT_EQ(rc.decide_txop().mcs.nss, 1);
  EXPECT_EQ(rc.effective_nss(), 1);
}

TEST(RateControl, WidthIsPairwiseMinimum) {
  ClientCapability cap;
  cap.max_width = ChannelWidth::MHz40;
  auto rc = make_rc(2.0, cap, ChannelWidth::MHz80);
  EXPECT_EQ(rc.effective_width(), ChannelWidth::MHz40);
  // Max link rate honours the 40 MHz cap: 2ss MCS9 40 MHz = 400 Mbps.
  EXPECT_NEAR(rc.max_link_rate().mbps(), 400.0, 0.5);
}

TEST(RateControl, VeryFarLinkNotViable) {
  ClientCapability cap;
  auto rc = make_rc(5000.0, cap);
  EXPECT_FALSE(rc.decide_txop().viable);
}

TEST(RateControl, N11ClientCappedAtMcs7) {
  ClientCapability cap;
  cap.standard = WifiStandard::k80211n;
  cap.max_width = ChannelWidth::MHz40;
  auto rc = make_rc(2.0, cap);
  EXPECT_LE(rc.decide_txop().mcs.mcs, 7);
}

TEST(RateControl, FadingVariesDecisions) {
  ClientCapability cap;
  auto rc = make_rc(20.0, cap, ChannelWidth::MHz80, /*fading=*/3.0);
  bool varied = false;
  const Db first = rc.decide_txop().snr;
  for (int i = 0; i < 20 && !varied; ++i) varied = rc.decide_txop().snr != first;
  EXPECT_TRUE(varied);
}

// ------------------------------------------------------ AP datapath ----

// Full-stack smoke via the Testbed scenario.
TEST(ApDatapath, SingleClientDownlinkDelivers) {
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 1;
  cfg.duration = time::seconds(2);
  cfg.warmup = time::millis(500);
  scenario::Testbed tb(cfg);
  tb.run();
  EXPECT_GT(tb.aggregate_throughput_mbps(), 50.0);
  EXPECT_GT(tb.client(0, 0).bytes_delivered(), 0u);
  EXPECT_GT(tb.ap(0).stats().tcp_latency.count(), 0u);
}

TEST(ApDatapath, AmpduSizesBoundedByStandard) {
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 4;
  cfg.duration = time::seconds(2);
  scenario::Testbed tb(cfg);
  tb.run();
  for (int c = 0; c < 4; ++c) {
    const Samples& s = tb.ap(0).ampdu_sizes(tb.client(0, c).id());
    ASSERT_GT(s.count(), 0u);
    EXPECT_LE(s.max(), 64.0);
    EXPECT_GE(s.min(), 1.0);
  }
}

TEST(ApDatapath, DscpRoutesToAccessCategories) {
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 4;
  cfg.duration = time::seconds(2);
  // Clients 0-1 voice, 2-3 background.
  cfg.dscp_of = [](int c) { return c < 2 ? 46 : 8; };
  scenario::Testbed tb(cfg);
  tb.run();
  const auto& st = tb.ap(0).stats();
  EXPECT_GT(st.mpdus_acked_by_ac[static_cast<int>(AccessCategory::VO)], 0u);
  EXPECT_GT(st.mpdus_acked_by_ac[static_cast<int>(AccessCategory::BK)], 0u);
  EXPECT_EQ(st.mpdus_acked_by_ac[static_cast<int>(AccessCategory::BE)], 0u);
}

TEST(ApDatapath, VoiceLatencyBeatsBackground) {
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 8;
  cfg.duration = time::seconds(3);
  cfg.dscp_of = [](int c) { return c % 2 == 0 ? 46 : 8; };
  scenario::Testbed tb(cfg);
  tb.run();
  const auto& st = tb.ap(0).stats();
  const auto& vo = st.latency_80211_by_ac[static_cast<int>(AccessCategory::VO)];
  const auto& bk = st.latency_80211_by_ac[static_cast<int>(AccessCategory::BK)];
  ASSERT_GT(vo.count(), 100u);
  ASSERT_GT(bk.count(), 100u);
  EXPECT_LT(vo.median(), bk.median());
}

TEST(ApDatapath, UdpSaturationKeepsQueuesFull) {
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 2;
  cfg.traffic = scenario::TrafficType::kUdpDownlink;
  cfg.duration = time::seconds(2);
  scenario::Testbed tb(cfg);
  tb.run();
  EXPECT_GT(tb.client(0, 0).udp_bytes_received(), 0u);
  // Saturated queues produce max-size (or airtime-limited) aggregates.
  const Samples& s = tb.ap(0).ampdu_sizes(tb.client(0, 0).id());
  EXPECT_GT(s.mean(), 30.0);
}

TEST(ApDatapath, FiniteTransferCompletesEndToEnd) {
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 1;
  cfg.duration = time::seconds(10);
  cfg.warmup = time::millis(1);
  scenario::Testbed tb(cfg);
  // Replace unlimited flow with a finite one by driving the sender directly.
  tb.simulator();  // (Testbed starts unlimited flows in run(); accept that
                   // and simply verify deterministic delivery accounting.)
  tb.run();
  const auto* rx = tb.client(0, 0).receiver(FlowId{0});
  ASSERT_NE(rx, nullptr);
  EXPECT_EQ(rx->stats().window_overflow_drops, 0u);
  EXPECT_GT(rx->bytes_delivered(), 1'000'000u);
}

TEST(ApDatapath, QueueDropsWhenCapTiny) {
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 3;
  cfg.duration = time::seconds(2);
  scenario::Testbed tb(cfg);
  tb.run();
  // Default config should see no overflow with 3 clients...
  EXPECT_EQ(tb.ap(0).stats().queue_drops, 0u);
}

TEST(ApDatapath, CountsInterceptorSuppressions) {
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 3;
  cfg.fastack = {true};
  cfg.duration = time::seconds(2);
  scenario::Testbed tb(cfg);
  tb.run();
  EXPECT_GT(tb.ap(0).stats().acks_suppressed, 0u);
  ASSERT_NE(tb.agent(0), nullptr);
  EXPECT_GT(tb.agent(0)->stats().fast_acks_sent, 0u);
}

TEST(ApDatapath, AssociationIsExclusive) {
  Simulator sim;
  mac::Medium medium(sim, {}, Rng(1));
  AccessPoint::Config acfg;
  acfg.id = ApId{0};
  AccessPoint ap(sim, medium, acfg, Rng(2));
  ClientStation::Config ccfg;
  ccfg.id = StationId{0};
  ccfg.pos = Position{5, 0};
  ClientStation client(sim, medium, ccfg, Rng(3));
  ap.associate(&client);
  EXPECT_THROW(ap.associate(&client), std::logic_error);
}

TEST(ApDatapath, RateControllerExposedPerStation) {
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 2;
  cfg.duration = time::millis(100);
  cfg.warmup = time::millis(10);
  scenario::Testbed tb(cfg);
  tb.run();
  const RateController* rc = tb.ap(0).rate_controller(tb.client(0, 0).id());
  ASSERT_NE(rc, nullptr);
  EXPECT_GT(rc->max_link_rate().mbps(), 0.0);
  EXPECT_EQ(tb.ap(0).rate_controller(StationId{999}), nullptr);
}

}  // namespace
}  // namespace w11

namespace w11 {
namespace {

// ----------------------------------------------------------- A-MSDU ------

TEST(Amsdu, BundlingAmortizesPerTxopOverhead) {
  // UDP saturation at a high PHY rate: the 64-MPDU cap binds, so bundling
  // k MSDUs per MPDU carries ~k times the payload per TXOP. Throughput
  // gains come from amortizing the fixed TXOP overhead (contention +
  // preamble + BlockAck) over more payload — ~20-30% at high MCS, not k x.
  auto throughput = [](int k) {
    scenario::TestbedConfig cfg;
    cfg.n_clients_per_ap = 2;
    cfg.traffic = scenario::TrafficType::kUdpDownlink;
    cfg.duration = time::seconds(3);
    cfg.client_min_dist_m = cfg.client_max_dist_m = 5.0;  // high MCS
    cfg.amsdu_max_msdus = k;
    cfg.seed = 3;
    scenario::Testbed tb(cfg);
    tb.run();
    return tb.aggregate_throughput_mbps();
  };
  const double plain = throughput(1);
  const double bundled = throughput(4);
  EXPECT_GT(bundled, plain * 1.15);
}

TEST(Amsdu, AggregateCountStillBoundedBy64Mpdus) {
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 2;
  cfg.traffic = scenario::TrafficType::kUdpDownlink;
  cfg.duration = time::seconds(2);
  cfg.client_min_dist_m = cfg.client_max_dist_m = 5.0;
  cfg.amsdu_max_msdus = 4;
  scenario::Testbed tb(cfg);
  tb.run();
  for (int c = 0; c < 2; ++c) {
    const Samples& s = tb.ap(0).ampdu_sizes(tb.client(0, c).id());
    ASSERT_GT(s.count(), 0u);
    EXPECT_LE(s.max(), 64.0);  // MPDU (bundle) count, not MSDU count
  }
}

TEST(Amsdu, TcpStreamIntactWithBundling) {
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 3;
  cfg.duration = time::seconds(3);
  cfg.fastack = {true};
  cfg.amsdu_max_msdus = 4;
  cfg.seed = 5;
  scenario::Testbed tb(cfg);
  tb.run();
  for (int c = 0; c < 3; ++c) {
    const auto* rx = tb.client(0, c).receiver(FlowId{static_cast<std::uint32_t>(c)});
    ASSERT_NE(rx, nullptr);
    EXPECT_GT(rx->bytes_delivered(), 500'000u);
    EXPECT_EQ(rx->stats().window_overflow_drops, 0u);
  }
}

}  // namespace
}  // namespace w11
