// Unit tests for workload/: population samplers, topologies, traffic shapes.

#include <gtest/gtest.h>

#include "mac/edca.hpp"
#include "workload/device_population.hpp"
#include "workload/topology.hpp"
#include "workload/traffic.hpp"

namespace w11 {
namespace {

using workload::Era;

std::vector<ClientCapability> population(Era era, int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ClientCapability> pop;
  pop.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pop.push_back(workload::sample_client(era, rng));
  return pop;
}

// Fig. 1 marginals, within sampling tolerance.
TEST(DevicePopulation, Shares2017MatchPaper) {
  const auto shares = workload::summarize(population(Era::k2017, 40'000, 1));
  EXPECT_NEAR(shares.ac, 0.46, 0.03);
  EXPECT_NEAR(shares.band24_only, 0.40, 0.03);
  EXPECT_NEAR(shares.two_stream, 0.37, 0.03);
}

TEST(DevicePopulation, Shares2015MatchPaper) {
  const auto shares = workload::summarize(population(Era::k2015, 40'000, 2));
  EXPECT_NEAR(shares.ac, 0.18, 0.03);
  EXPECT_NEAR(shares.band24_only, 0.40, 0.03);
  EXPECT_NEAR(shares.two_stream, 0.19, 0.03);
}

TEST(DevicePopulation, GrowthDirectionsMatchPaper) {
  const auto s15 = workload::summarize(population(Era::k2015, 30'000, 3));
  const auto s17 = workload::summarize(population(Era::k2017, 30'000, 4));
  EXPECT_GT(s17.ac, s15.ac * 2.0);          // 18 % -> 46 %
  EXPECT_GT(s17.two_stream, s15.two_stream);  // 19 % -> 37 %
  EXPECT_GT(s17.width80, s15.width80);
  EXPECT_NEAR(s17.band24_only, s15.band24_only, 0.03);  // steady ~40 %
}

TEST(DevicePopulation, ConsistencyInvariants) {
  for (const auto& c : population(Era::k2017, 5'000, 5)) {
    if (c.standard == WifiStandard::k80211ac) EXPECT_TRUE(c.supports_5ghz);
    if (c.standard == WifiStandard::k80211g)
      EXPECT_EQ(c.max_width, ChannelWidth::MHz20);
    if (c.standard == WifiStandard::k80211n)
      EXPECT_LE(c.max_width, ChannelWidth::MHz40);
    EXPECT_GE(c.max_nss, 1);
    EXPECT_LE(c.max_nss, 3);
  }
}

TEST(DevicePopulation, ApProfileSharesMatchPaper) {
  Rng rng(6);
  int ac = 0, two_chain = 0, indoor = 0;
  const int n = 30'000;
  for (int i = 0; i < n; ++i) {
    const auto ap = workload::sample_ap(rng);
    ac += ap.standard == WifiStandard::k80211ac;
    two_chain += ap.antenna_chains == 2;
    indoor += ap.indoor;
  }
  EXPECT_NEAR(ac / double(n), 0.52, 0.02);
  EXPECT_NEAR(two_chain / double(n), 0.73, 0.02);
  EXPECT_NEAR(indoor / double(n), 0.93, 0.02);
}

// Table 1 shares.
TEST(DevicePopulation, ConfiguredWidthMatchesTable1) {
  Rng rng(7);
  const int n = 30'000;
  int w20 = 0, w40 = 0, w80 = 0;
  for (int i = 0; i < n; ++i) {
    switch (workload::sample_configured_width(/*large_network=*/false, rng)) {
      case ChannelWidth::MHz20: ++w20; break;
      case ChannelWidth::MHz40: ++w40; break;
      default: ++w80; break;
    }
  }
  EXPECT_NEAR(w20 / double(n), 0.149, 0.01);
  EXPECT_NEAR(w40 / double(n), 0.191, 0.01);
  EXPECT_NEAR(w80 / double(n), 0.660, 0.01);
}

// §3.2.3 density buckets.
TEST(DevicePopulation, ClientDensityBuckets) {
  Rng rng(8);
  const int n = 40'000;
  int b1 = 0, b2 = 0, b3 = 0, b4 = 0, max_seen = 0;
  for (int i = 0; i < n; ++i) {
    const int d = workload::sample_client_density(rng);
    EXPECT_GE(d, 1);
    EXPECT_LE(d, 338);
    max_seen = std::max(max_seen, d);
    if (d <= 5) ++b1;
    else if (d <= 10) ++b2;
    else if (d <= 20) ++b3;
    else ++b4;
  }
  EXPECT_NEAR(b1 / double(n), 0.33, 0.02);
  EXPECT_NEAR(b2 / double(n), 0.22, 0.02);
  EXPECT_NEAR(b3 / double(n), 0.20, 0.02);
  EXPECT_NEAR(b4 / double(n), 0.25, 0.02);
  EXPECT_GT(max_seen, 100);
}

// ------------------------------------------------------------- traffic --

TEST(Traffic, DiurnalShape) {
  // Overnight light, afternoon peak.
  EXPECT_LT(workload::diurnal_factor(3.0), 0.15);
  EXPECT_GT(workload::diurnal_factor(15.0), 0.9);
  EXPECT_GT(workload::diurnal_factor(10.0), workload::diurnal_factor(7.0));
  for (double h = 0; h < 24.0; h += 0.25) {
    const double f = workload::diurnal_factor(h);
    EXPECT_GT(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  // Periodic wrap.
  EXPECT_DOUBLE_EQ(workload::diurnal_factor(25.0), workload::diurnal_factor(1.0));
}

TEST(Traffic, BurstWindow) {
  workload::BurstEvent b;  // 14:00 for 30 min, x3
  EXPECT_DOUBLE_EQ(workload::burst_factor(b, 13.9), 1.0);
  EXPECT_DOUBLE_EQ(workload::burst_factor(b, 14.2), 3.0);
  EXPECT_DOUBLE_EQ(workload::burst_factor(b, 14.6), 1.0);
}

TEST(Traffic, FieldAcMixMatchesPaper) {
  Rng rng(9);
  const int n = 40'000;
  int bk = 0, be = 0;
  for (int i = 0; i < n; ++i) {
    const auto ac = workload::sample_field_ac(rng);
    bk += ac == AccessCategory::BK;
    be += ac == AccessCategory::BE;
  }
  EXPECT_NEAR(bk / double(n), 0.14, 0.01);
  EXPECT_NEAR(be / double(n), 0.855, 0.01);
}

TEST(Traffic, OfficeAcMixMatchesPaper) {
  Rng rng(10);
  const int n = 40'000;
  int vo = 0;
  for (int i = 0; i < n; ++i)
    vo += workload::sample_office_ac(rng) == AccessCategory::VO;
  EXPECT_NEAR(vo / double(n), 0.10, 0.01);
}

TEST(Traffic, DscpRoundTripsThroughWmmMapping) {
  for (AccessCategory ac : kAllAccessCategories)
    EXPECT_EQ(dscp_to_ac(workload::dscp_for(ac)), ac);
}

// ------------------------------------------------------------ topology --

TEST(Topology, CampusHasRequestedShape) {
  workload::CampusConfig cfg;
  cfg.n_aps = 40;
  cfg.seed = 11;
  auto net = workload::make_campus(cfg);
  EXPECT_EQ(net->ap_count(), 40u);
  std::size_t clients = 0;
  for (const auto& ap : net->aps()) {
    clients += ap.clients.size();
    EXPECT_EQ(ap.channel.band, Band::G5);
    // 5 GHz network: every placed client must support the band.
    for (const auto& cl : ap.clients) EXPECT_TRUE(cl.cap.supports_5ghz);
  }
  EXPECT_GT(clients, 100u);
}

TEST(Topology, CampusIsDeterministicPerSeed) {
  workload::CampusConfig cfg;
  cfg.n_aps = 15;
  cfg.seed = 12;
  auto a = workload::make_campus(cfg);
  auto b = workload::make_campus(cfg);
  ASSERT_EQ(a->ap_count(), b->ap_count());
  for (std::size_t i = 0; i < a->ap_count(); ++i) {
    EXPECT_EQ(a->aps()[i].pos, b->aps()[i].pos);
    EXPECT_EQ(a->aps()[i].clients.size(), b->aps()[i].clients.size());
  }
}

TEST(Topology, OfficeIsDenseAndConnected) {
  workload::OfficeConfig cfg;
  cfg.n_aps = 33;
  cfg.n_clients = 350;
  auto net = workload::make_office(cfg);
  EXPECT_EQ(net->ap_count(), 33u);
  std::size_t clients = 0;
  for (const auto& ap : net->aps()) clients += ap.clients.size();
  EXPECT_EQ(clients, 350u);
  // Dense floor: with everyone on the same channel every AP has many
  // carrier-sense neighbors.
  const auto scans = net->scan();
  double mean_nbrs = 0;
  for (const auto& s : scans) mean_nbrs += static_cast<double>(s.neighbors.size());
  mean_nbrs /= static_cast<double>(scans.size());
  EXPECT_GT(mean_nbrs, 10.0);
}

TEST(Topology, RandomizeChannelsRespectsWidth) {
  workload::CampusConfig cfg;
  cfg.n_aps = 20;
  cfg.seed = 13;
  auto net = workload::make_campus(cfg);
  Rng rng(14);
  workload::randomize_channels(*net, ChannelWidth::MHz40, rng);
  bool multiple = false;
  const Channel first = net->aps()[0].channel;
  for (const auto& ap : net->aps()) {
    EXPECT_EQ(ap.channel.width, ChannelWidth::MHz40);
    EXPECT_FALSE(ap.channel.is_dfs());
    multiple |= ap.channel != first;
  }
  EXPECT_TRUE(multiple);
}

TEST(Topology, ClientsAttachToNearestOfficeAp) {
  workload::OfficeConfig cfg;
  cfg.n_aps = 9;
  cfg.n_clients = 100;
  cfg.seed = 15;
  auto net = workload::make_office(cfg);
  for (const auto& ap : net->aps()) {
    for (const auto& cl : ap.clients) {
      const double own = distance_m(cl.pos, ap.pos);
      for (const auto& other : net->aps())
        EXPECT_LE(own, distance_m(cl.pos, other.pos) + 1e-9);
    }
  }
}

}  // namespace
}  // namespace w11
