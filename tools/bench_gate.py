#!/usr/bin/env python3
"""Bench regression gate (DESIGN.md §17.4).

Diffs freshly produced BENCH_*.json files against the committed baselines
and fails CI on regression. Two classes of check:

  exact  — determinism witnesses and sim-time-derived results (plan digests,
           convergence percentiles, row/plan counts, twin/postmortem
           byte-identity flags). These are machine-independent: any drift is
           a real behaviour change and fails the gate outright.
  loose  — wall-clock performance numbers (seconds, rates, RSS). CI machines
           differ from the baseline machine, so these only catch
           catastrophes: fresh must stay within `loose_factor` (default 5x)
           of baseline in both directions.

Fields that are pure environment (hardware_concurrency, cpu_share, speedup,
build_type) are ignored. Google-benchmark files (BENCH_planner.json,
BENCH_flowsim.json) are matched per benchmark name on real_time, loose only.

Exit status: 0 = pass, 1 = regression, 2 = usage/IO error.

Overrides:
  W11_BENCH_GATE_SOFT=1   report findings but exit 0 — for PRs that
                          intentionally move a baseline; the PR must also
                          commit the regenerated BENCH_*.json (see
                          .github/workflows/ci.yml).

Usage:
  tools/bench_gate.py --baseline-dir . --fresh-dir build/bench \\
      [--files BENCH_fleet.json,BENCH_rollout.json] [--out verdict.json]
"""

import argparse
import json
import math
import os
import sys

# Perf tolerance bands, widenable for cross-machine comparisons (CI runners
# vs the machine that produced the committed baselines):
#   W11_BENCH_GATE_LOOSE_FACTOR   custom-artifact perf fields (default 5x)
#   W11_BENCH_GATE_GBENCH_FACTOR  google-benchmark real_time   (default 3x)
LOOSE_FACTOR = float(os.environ.get("W11_BENCH_GATE_LOOSE_FACTOR", "5"))
GBENCH_FACTOR = float(os.environ.get("W11_BENCH_GATE_GBENCH_FACTOR", "3"))

# Environment-dependent fields never compared, in any file.
IGNORED = {
    "build_type",
    "hardware_concurrency",
    "cpu_share",
    "speedup_8w_over_1w",
    "ingest_speedup",
    "rss_watermark_resettable",
}

# Substrings marking a numeric leaf as wall-clock-ish (loose), not exact.
LOOSE_MARKERS = (
    "wall_s",
    "cpu_s",
    "_per_sec",
    "per_second",
    "ingest_steady_s",
    "peak_rss",
    "plan_latency_ms",
)

GBENCH_FILES = {"BENCH_planner.json", "BENCH_flowsim.json"}

DEFAULT_FILES = [
    "BENCH_fleet.json",
    "BENCH_fleet_delta.json",
    "BENCH_rollout.json",
    "BENCH_planner.json",
    "BENCH_flowsim.json",
]


def is_loose(path):
    leaf = path.rsplit(".", 1)[-1]
    return any(m in leaf for m in LOOSE_MARKERS)


def within_factor(base, fresh, factor):
    if base == fresh:
        return True
    if base == 0 or fresh == 0:
        # One side zero, the other not: only a catastrophe if the nonzero
        # side is a real quantity (guards 1e-12-ish jitter on rates).
        return abs(base - fresh) < 1e-9
    if (base < 0) != (fresh < 0):
        return False
    ratio = abs(fresh) / abs(base)
    return 1.0 / factor <= ratio <= factor


def walk(base, fresh, path, failures, checks):
    """Structural diff: exact on everything except loose-marked numerics."""
    leaf = path.rsplit(".", 1)[-1].split("[", 1)[0]
    if leaf in IGNORED:
        return
    if isinstance(base, dict):
        if not isinstance(fresh, dict):
            failures.append((path, "shape", base, fresh))
            return
        for k in base:
            if k not in fresh:
                failures.append((f"{path}.{k}", "missing-in-fresh", base[k], None))
                continue
            walk(base[k], fresh[k], f"{path}.{k}", failures, checks)
        for k in fresh:
            if k not in base and k not in IGNORED:
                # New fields are fine (a PR may add metrics); note only.
                pass
        return
    if isinstance(base, list):
        if not isinstance(fresh, list) or len(base) != len(fresh):
            failures.append((path, "list-shape", len(base),
                             len(fresh) if isinstance(fresh, list) else None))
            return
        for i, (b, f) in enumerate(zip(base, fresh)):
            walk(b, f, f"{path}[{i}]", failures, checks)
        return
    checks[0] += 1
    if isinstance(base, (int, float)) and isinstance(fresh, (int, float)) \
            and not isinstance(base, bool) and not isinstance(fresh, bool):
        if is_loose(path):
            if not within_factor(float(base), float(fresh), LOOSE_FACTOR):
                failures.append((path, f"loose>{LOOSE_FACTOR}x", base, fresh))
        else:
            if isinstance(base, float) or isinstance(fresh, float):
                ok = (math.isclose(float(base), float(fresh),
                                   rel_tol=1e-12, abs_tol=1e-12))
            else:
                ok = base == fresh
            if not ok:
                failures.append((path, "exact", base, fresh))
        return
    if base != fresh:
        failures.append((path, "exact", base, fresh))


def diff_gbench(base, fresh, failures, checks):
    """Google-benchmark: match by name, loose band on real_time."""
    def rows(doc):
        out = {}
        for b in doc.get("benchmarks", []):
            agg = b.get("aggregate_name")
            if agg not in (None, "mean", "median"):
                continue  # stddev/cv are noise, not a signal
            out[b["name"]] = b
        return out

    fresh_rows = rows(fresh)
    for name, b in rows(base).items():
        f = fresh_rows.get(name)
        if f is None:
            failures.append((f"benchmarks.{name}", "missing-in-fresh",
                             b.get("real_time"), None))
            continue
        checks[0] += 1
        if not within_factor(float(b["real_time"]), float(f["real_time"]),
                             GBENCH_FACTOR):
            failures.append((f"benchmarks.{name}.real_time",
                             f"loose>{GBENCH_FACTOR}x",
                             b["real_time"], f["real_time"]))


def gate_file(name, baseline_dir, fresh_dir):
    result = {"file": name, "checks": 0, "failures": [], "status": "pass"}
    base_path = os.path.join(baseline_dir, name)
    fresh_path = os.path.join(fresh_dir, name)
    if not os.path.exists(base_path):
        result["status"] = "no-baseline"  # first run of a new bench: not a gate
        return result
    if not os.path.exists(fresh_path):
        result["status"] = "fail"
        result["failures"] = [{"path": name, "kind": "fresh-artifact-missing",
                               "baseline": None, "fresh": None}]
        return result
    with open(base_path) as fp:
        base = json.load(fp)
    with open(fresh_path) as fp:
        fresh = json.load(fp)
    failures, checks = [], [0]
    if name in GBENCH_FILES:
        diff_gbench(base, fresh, failures, checks)
    else:
        walk(base, fresh, name.removesuffix(".json"), failures, checks)
    result["checks"] = checks[0]
    result["failures"] = [
        {"path": p, "kind": k, "baseline": b, "fresh": f}
        for p, k, b, f in failures
    ]
    if failures:
        result["status"] = "fail"
    return result


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline-dir", required=True,
                    help="directory holding the committed BENCH_*.json")
    ap.add_argument("--fresh-dir", required=True,
                    help="directory the benches just wrote BENCH_*.json into")
    ap.add_argument("--files", default=",".join(DEFAULT_FILES),
                    help="comma-separated artifact names to gate")
    ap.add_argument("--out", default=None,
                    help="write the machine-readable verdict JSON here")
    args = ap.parse_args(argv)

    soft = os.environ.get("W11_BENCH_GATE_SOFT", "0") not in ("", "0")
    files = [f.strip() for f in args.files.split(",") if f.strip()]
    results = [gate_file(f, args.baseline_dir, args.fresh_dir) for f in files]
    failed = [r for r in results if r["status"] == "fail"]
    verdict = {
        "verdict": "pass" if not failed else ("soft-fail" if soft else "fail"),
        "soft": soft,
        "files": results,
    }
    if args.out:
        with open(args.out, "w") as fp:
            json.dump(verdict, fp, indent=2)
            fp.write("\n")

    for r in results:
        tag = {"pass": "PASS", "fail": "FAIL",
               "no-baseline": "SKIP (no baseline)"}[r["status"]]
        print(f"[bench-gate] {r['file']}: {tag} ({r['checks']} checks)")
        for f in r["failures"]:
            print(f"  {f['kind']:>14}  {f['path']}: "
                  f"baseline={f['baseline']} fresh={f['fresh']}")
    if failed:
        print(f"[bench-gate] verdict: {verdict['verdict']} "
              f"({len(failed)} file(s) regressed)")
        if soft:
            print("[bench-gate] W11_BENCH_GATE_SOFT=1: reporting only — "
                  "commit regenerated baselines with this PR")
            return 0
        print("[bench-gate] regression: either fix the change or, for an "
              "intentional baseline move, rerun with W11_BENCH_GATE_SOFT=1 "
              "and commit the regenerated BENCH_*.json")
        return 1
    print("[bench-gate] verdict: pass")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
